// Package mem models physical memory and per-process virtual address
// spaces: sparse physical frames, page table entries with the x86
// permission bits the Phantom exploits depend on (present, user, writable,
// no-execute), 4 KiB and 2 MiB pages, and a small TLB model for
// translation timing.
//
// The exploits probe exactly these properties: P1 detects *mapped
// executable* kernel memory (instruction fetch only fills the I-cache when
// the target is present and executable), P2 detects *mapped non-executable*
// memory (physmap is mapped NX), and breaking KASLR means locating where in
// the huge kernel virtual regions the present pages actually are.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Page geometry.
const (
	PageShift     = 12
	PageSize      = 1 << PageShift // 4 KiB
	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift // 2 MiB
)

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << iota // page is readable (present implies readable here)
	PermWrite                  // page is writable
	PermExec                   // page is executable (NX clear)
	PermUser                   // page is accessible from user mode (CPL3)
)

func (p Perm) String() string {
	b := []byte("r---")
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	if p&PermUser != 0 {
		b[3] = 'u'
	}
	if p&PermRead == 0 {
		b[0] = '-'
	}
	return string(b)
}

// AccessKind distinguishes the intent of a memory access for fault checks.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "access?"
}

// Fault describes a page fault. It implements error.
type Fault struct {
	VA   uint64
	Kind AccessKind
	// NotPresent is true when no translation exists; false means a
	// permission violation (NX fetch, user access to supervisor page,
	// write to read-only page).
	NotPresent bool
}

func (f *Fault) Error() string {
	why := "permission"
	if f.NotPresent {
		why = "not-present"
	}
	return fmt.Sprintf("page fault: %s of %#x (%s)", f.Kind, f.VA, why)
}

// PTE is a page table entry: a physical frame base plus permissions.
type PTE struct {
	PA   uint64 // physical base of the page (aligned to the page size)
	Perm Perm
	Huge bool // 2 MiB mapping
}

// PhysMem is sparse physical memory, allocated in 4 KiB frames on first
// touch. The zero value is not usable; call NewPhysMem.
type PhysMem struct {
	frames map[uint64][]byte // keyed by PA >> PageShift

	// codeGens tracks, per frame holding predecoded instruction bytes
	// (see pipeline's predecode cache), a generation counter bumped by
	// any write that changes bytes in that frame. Frames outside the
	// map — data, stacks — write at full speed.
	codeGens map[uint64]uint64

	// arena backs lazily-touched frames in page-sized runs carved from
	// chunk allocations, so experiments that touch thousands of fresh
	// frames (KASLR slot sweeps map new training pages per probe) pay one
	// allocation per chunk instead of one per frame.
	arena []byte

	size uint64 // advertised physical memory size (for physmap experiments)
}

// NewPhysMem returns physical memory advertising the given size in bytes
// (the size bounds the physical-address search space in the Table 5
// experiment; frames are still allocated lazily).
func NewPhysMem(size uint64) *PhysMem {
	return &PhysMem{
		frames:   make(map[uint64][]byte),
		codeGens: make(map[uint64]uint64),
		size:     size,
	}
}

// Size returns the advertised physical memory size in bytes.
func (pm *PhysMem) Size() uint64 { return pm.size }

// frameArenaPages is how many frames one arena chunk backs.
const frameArenaPages = 16

func (pm *PhysMem) frame(pa uint64) []byte {
	key := pa >> PageShift
	f := pm.frames[key]
	if f == nil {
		if len(pm.arena) < PageSize {
			pm.arena = make([]byte, PageSize*frameArenaPages)
		}
		f = pm.arena[:PageSize:PageSize]
		pm.arena = pm.arena[PageSize:]
		pm.frames[key] = f
	}
	return f
}

// Read8 reads one byte of physical memory.
func (pm *PhysMem) Read8(pa uint64) byte {
	return pm.frame(pa)[pa&(PageSize-1)]
}

// Write8 writes one byte of physical memory.
func (pm *PhysMem) Write8(pa uint64, v byte) {
	b := pm.frame(pa)
	off := pa & (PageSize - 1)
	if b[off] != v {
		b[off] = v
		pm.noteCodeChange(pa)
	}
}

// Read64 reads a little-endian 64-bit word (may straddle frames).
func (pm *PhysMem) Read64(pa uint64) uint64 {
	if off := pa & (PageSize - 1); off+8 <= PageSize {
		return binary.LittleEndian.Uint64(pm.frame(pa)[off:])
	}
	var v uint64
	for i := uint(0); i < 8; i++ {
		v |= uint64(pm.Read8(pa+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word (may straddle frames).
func (pm *PhysMem) Write64(pa uint64, v uint64) {
	if off := pa & (PageSize - 1); off+8 <= PageSize {
		b := pm.frame(pa)[off : off+8]
		if binary.LittleEndian.Uint64(b) != v {
			binary.LittleEndian.PutUint64(b, v)
			pm.noteCodeChange(pa)
		}
		return
	}
	for i := uint(0); i < 8; i++ {
		pm.Write8(pa+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into physical memory starting at pa, frame by frame.
func (pm *PhysMem) WriteBytes(pa uint64, b []byte) {
	for len(b) > 0 {
		frame := pm.frame(pa)
		off := pa & (PageSize - 1)
		dst := frame[off:]
		n := len(b)
		if n > len(dst) {
			n = len(dst)
		}
		// A copy only *changes* the frame if the bytes differ; rewriting an
		// identical blob (retraining loops do this constantly) must not
		// invalidate predecoded lines. The compare runs only for frames the
		// predecode cache registered.
		if pm.isCodeFrame(pa) && !bytes.Equal(dst[:n], b[:n]) {
			pm.codeGens[pa>>PageShift]++
		}
		copy(dst, b[:n])
		b = b[n:]
		pa += uint64(n)
	}
}

// Window returns a slice aliasing the physical frame that contains pa,
// covering [pa, pa+n). It reports false when the window would straddle a
// frame boundary. The slice must be treated as read-only: writing through
// it would bypass the code-generation tracking that Write8/Write64/
// WriteBytes maintain for predecode invalidation.
func (pm *PhysMem) Window(pa uint64, n int) ([]byte, bool) {
	off := pa & (PageSize - 1)
	if off+uint64(n) > PageSize {
		return nil, false
	}
	return pm.frame(pa)[off : off+uint64(n)], true
}

// MarkCodeFrame records that the frame containing pa holds predecoded
// instruction bytes, so subsequent byte-changing writes to it bump its
// generation. It returns the frame's current generation, which callers
// snapshot alongside the decode they cache.
func (pm *PhysMem) MarkCodeFrame(pa uint64) uint64 {
	key := pa >> PageShift
	g, ok := pm.codeGens[key]
	if !ok {
		g = 1
		pm.codeGens[key] = g
	}
	return g
}

// CodeGen returns the generation of the frame containing pa (0 if the
// frame was never marked). A cached decode is stale iff the generation
// has moved past the value snapshotted at insert time.
func (pm *PhysMem) CodeGen(pa uint64) uint64 { return pm.codeGens[pa>>PageShift] }

func (pm *PhysMem) isCodeFrame(pa uint64) bool {
	if len(pm.codeGens) == 0 {
		return false
	}
	_, ok := pm.codeGens[pa>>PageShift]
	return ok
}

// noteCodeChange advances the generation of pa's frame when it holds
// predecoded code (self-modifying code, harness rewrites). The common
// case — no code frames registered yet, or a write to a data frame —
// costs one length check or one map probe.
func (pm *PhysMem) noteCodeChange(pa uint64) {
	if len(pm.codeGens) == 0 {
		return
	}
	key := pa >> PageShift
	if _, ok := pm.codeGens[key]; ok {
		pm.codeGens[key]++
	}
}

// ReadBytes copies n bytes starting at pa.
func (pm *PhysMem) ReadBytes(pa uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = pm.Read8(pa + uint64(i))
	}
	return out
}

// AddrSpace is a virtual address space: a page-granular map of VA to PTE.
// Kernel and user mappings coexist in one AddrSpace, distinguished by
// PermUser, as on x86-64 Linux without KPTI; with KPTI the kernel swaps in
// a second AddrSpace lacking most kernel mappings while user code runs.
type AddrSpace struct {
	pages  map[uint64]PTE // keyed by VA >> PageShift
	phys   *PhysMem
	ranges []linearRange // fallback linear windows (e.g. physmap)

	// epoch counts mapping mutations (Map, MapHuge, Unmap, SetPerm,
	// AddLinearRange). Translation memos snapshot it and self-invalidate
	// when it moves, so remapping a page can never serve a stale PA.
	epoch uint64
}

// NewAddrSpace returns an empty address space backed by pm.
func NewAddrSpace(pm *PhysMem) *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]PTE), phys: pm}
}

// Phys returns the backing physical memory.
func (as *AddrSpace) Phys() *PhysMem { return as.phys }

// Epoch returns the mapping-mutation count. Any change to the VA→PA
// relation (or its permissions) moves the epoch forward.
func (as *AddrSpace) Epoch() uint64 { return as.epoch }

// Map installs a mapping of length bytes from va to pa with the given
// permissions. va, pa and length must be page aligned.
func (as *AddrSpace) Map(va, pa, length uint64, perm Perm) error {
	if va%PageSize != 0 || pa%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("mem: unaligned Map(%#x, %#x, %#x)", va, pa, length)
	}
	for off := uint64(0); off < length; off += PageSize {
		as.pages[(va+off)>>PageShift] = PTE{PA: pa + off, Perm: perm}
	}
	as.epoch++
	return nil
}

// MapHuge installs 2 MiB mappings; va, pa, length must be 2 MiB aligned.
// Huge mappings guarantee physically-contiguous 2 MiB regions, which the
// physmap Prime+Probe attack relies on (paper Section 7.2).
func (as *AddrSpace) MapHuge(va, pa, length uint64, perm Perm) error {
	if va%HugePageSize != 0 || pa%HugePageSize != 0 || length%HugePageSize != 0 {
		return fmt.Errorf("mem: unaligned MapHuge(%#x, %#x, %#x)", va, pa, length)
	}
	for off := uint64(0); off < length; off += PageSize {
		as.pages[(va+off)>>PageShift] = PTE{PA: pa + off, Perm: perm, Huge: true}
	}
	as.epoch++
	return nil
}

// Unmap removes mappings covering [va, va+length).
func (as *AddrSpace) Unmap(va, length uint64) {
	for off := uint64(0); off < length; off += PageSize {
		delete(as.pages, (va+off)>>PageShift)
	}
	as.epoch++
}

// SetPerm rewrites the permissions of an existing page, as the paper does
// when it "changes the PTE attributes of address K to make it accessible to
// user space" (Section 6.2). It returns false when va is unmapped.
func (as *AddrSpace) SetPerm(va uint64, perm Perm) bool {
	key := va >> PageShift
	pte, ok := as.pages[key]
	if !ok {
		return false
	}
	pte.Perm = perm
	as.pages[key] = pte
	as.epoch++
	return true
}

// Lookup returns the PTE covering va, consulting explicit pages first and
// linear ranges second.
func (as *AddrSpace) Lookup(va uint64) (PTE, bool) {
	if pte, ok := as.pages[va>>PageShift]; ok {
		return pte, true
	}
	return as.rangeLookup(va)
}

// Translate checks permissions for an access of the given kind from the
// given privilege (user=true means CPL3) and returns the physical address.
func (as *AddrSpace) Translate(va uint64, kind AccessKind, user bool) (uint64, *Fault) {
	pa, fv, ok := as.TranslateV(va, kind, user)
	if !ok {
		f := fv
		return 0, &f
	}
	return pa, nil
}

// TranslateV is Translate returning the fault by value (ok=false), for
// callers on paths where faults are routine — KASLR probing branches into
// unmapped kernel slots millions of times, and a heap-allocated Fault per
// probe dominated the experiment's allocation profile.
func (as *AddrSpace) TranslateV(va uint64, kind AccessKind, user bool) (pa uint64, fault Fault, ok bool) {
	pte, found := as.pages[va>>PageShift]
	if !found {
		if pte, found = as.rangeLookup(va); !found {
			return 0, Fault{VA: va, Kind: kind, NotPresent: true}, false
		}
	}
	if user && pte.Perm&PermUser == 0 {
		return 0, Fault{VA: va, Kind: kind}, false
	}
	switch kind {
	case AccessWrite:
		if pte.Perm&PermWrite == 0 {
			return 0, Fault{VA: va, Kind: kind}, false
		}
	case AccessFetch:
		if pte.Perm&PermExec == 0 {
			return 0, Fault{VA: va, Kind: kind}, false
		}
	}
	return pte.PA + va&(PageSize-1), Fault{}, true
}

// Read8 performs a privileged (kernel-level, permission-unchecked beyond
// presence) read, for harness use.
func (as *AddrSpace) Read8(va uint64) (byte, error) {
	pa, f := as.Translate(va, AccessRead, false)
	if f != nil {
		return 0, f
	}
	return as.phys.Read8(pa), nil
}

// Read64 performs a privileged 64-bit read for harness use.
func (as *AddrSpace) Read64(va uint64) (uint64, error) {
	if va&(PageSize-1) <= PageSize-8 {
		pa, f := as.Translate(va, AccessRead, false)
		if f != nil {
			return 0, f
		}
		return as.phys.Read64(pa), nil
	}
	var v uint64
	for i := uint(0); i < 8; i++ {
		b, err := as.Read8(va + uint64(i))
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Write64 performs a privileged 64-bit write for harness use. Virtual
// contiguity only implies physical contiguity within one page, so the
// single-translation fast path applies only when the word fits a page.
func (as *AddrSpace) Write64(va uint64, v uint64) error {
	if va&(PageSize-1) <= PageSize-8 {
		pa, f := as.Translate(va, AccessRead, false)
		if f != nil {
			return f
		}
		as.phys.Write64(pa, v)
		return nil
	}
	for i := uint(0); i < 8; i++ {
		pa, f := as.Translate(va+uint64(i), AccessRead, false)
		if f != nil {
			return f
		}
		as.phys.Write8(pa, byte(v>>(8*i)))
	}
	return nil
}

// WriteBytes installs b at va via existing mappings (harness use). It
// translates once per page and copies page-sized runs: a page that
// translates is physically contiguous, so per-byte translation — the
// dominant cost when harnesses rewrite whole training pages in a loop —
// is pure overhead. Bytes in pages preceding an unmapped page are still
// written before the error returns, matching the byte-wise behavior.
func (as *AddrSpace) WriteBytes(va uint64, b []byte) error {
	for len(b) > 0 {
		pa, f := as.Translate(va, AccessRead, false)
		if f != nil {
			return f
		}
		n := int(PageSize - va&(PageSize-1))
		if n > len(b) {
			n = len(b)
		}
		as.phys.WriteBytes(pa, b[:n])
		b = b[n:]
		va += uint64(n)
	}
	return nil
}

// Clone returns a copy of the address space sharing the same physical
// memory (used to build KPTI's shadow table).
func (as *AddrSpace) Clone() *AddrSpace {
	c := NewAddrSpace(as.phys)
	for k, v := range as.pages {
		c.pages[k] = v
	}
	c.ranges = append([]linearRange(nil), as.ranges...)
	return c
}

// MappedPages returns the number of installed PTEs (diagnostics).
func (as *AddrSpace) MappedPages() int { return len(as.pages) }
