package mem

// TLB is a small set-associative translation lookaside buffer used only for
// timing: a TLB miss adds a page-walk latency to the access that caused it.
// Functional translation always goes through AddrSpace; the TLB never
// caches permissions (permission checks rerun on every access, which is
// slightly conservative but irrelevant to the Phantom channels).
type TLB struct {
	sets  int
	ways  int
	tags  [][]uint64 // VPN+1 (0 = invalid)
	clock []int      // round-robin replacement per set
	// Hits and Misses count lookups for diagnostics.
	Hits   uint64
	Misses uint64
}

// NewTLB returns a TLB with the given geometry.
func NewTLB(sets, ways int) *TLB {
	t := &TLB{sets: sets, ways: ways}
	// One backing array carved into per-set slices; machines are built in
	// bulk during sweeps and per-set allocations dominated TLB setup.
	backing := make([]uint64, sets*ways)
	t.tags = make([][]uint64, sets)
	for i := range t.tags {
		t.tags[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	t.clock = make([]int, sets)
	return t
}

// Lookup probes the TLB for the page containing va, inserting it on miss,
// and reports whether it was a hit.
func (t *TLB) Lookup(va uint64) bool {
	vpn := va >> PageShift
	set := int(vpn) & (t.sets - 1)
	for _, tag := range t.tags[set] {
		if tag == vpn+1 {
			t.Hits++
			return true
		}
	}
	t.Misses++
	t.tags[set][t.clock[set]] = vpn + 1
	t.clock[set] = (t.clock[set] + 1) % t.ways
	return false
}

// Flush invalidates the whole TLB (context switch with KPTI, or explicit
// invlpg-all).
func (t *TLB) Flush() {
	for _, set := range t.tags {
		for i := range set {
			set[i] = 0
		}
	}
}

// FlushPage invalidates the entry for one page if present.
func (t *TLB) FlushPage(va uint64) {
	vpn := va >> PageShift
	set := int(vpn) & (t.sets - 1)
	for i, tag := range t.tags[set] {
		if tag == vpn+1 {
			t.tags[set][i] = 0
		}
	}
}
