package phantom_test

import (
	"fmt"

	"phantom"
)

// Boot a simulated AMD Zen 2 system and break its kernel image KASLR with
// the P1 transient-fetch primitive (Table 3 of the paper).
func ExampleSystem_BreakImageKASLR() {
	sys, err := phantom.NewSystem(phantom.Zen2, phantom.SystemConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	res, err := sys.BreakImageKASLR()
	if err != nil {
		panic(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("matches ground truth:", res.Guess == sys.KernelImageBase())
	// Output:
	// correct: true
	// matches ground truth: true
}

// Leak the kernel's planted secret through the Listing 4 MDS gadget
// (Section 7.4), running the whole Section 7 chain first.
func ExampleSystem_LeakKernelMemory() {
	sys, err := phantom.NewSystem(phantom.Zen2, phantom.SystemConfig{Seed: 2})
	if err != nil {
		panic(err)
	}
	secretVA, secret := sys.SecretAddr()
	res, err := sys.LeakKernelMemory(secretVA, 32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accuracy: %.0f%%\n", res.AccuracyPct)
	fmt.Println("exact:", string(res.Leaked[0]) == string(secret[0]))
	// Output:
	// accuracy: 100%
	// exact: true
}

// Measure how far a decoder-detectable misprediction advances on Zen 2
// versus Zen 4 (two cells of Table 1).
func ExampleRunTable1() {
	for _, arch := range []phantom.Microarch{phantom.Zen2, phantom.Zen4} {
		tb, err := phantom.RunTable1(arch, phantom.Table1Options{Seed: 1, Trials: 3})
		if err != nil {
			panic(err)
		}
		// Cell: jmp* training on a non-branch victim.
		for _, row := range tb.Cells {
			for _, c := range row {
				if c.Training == "jmp*" && c.Victim == "non-branch" {
					fmt.Printf("%s: %v\n", arch, c.Reach)
				}
			}
		}
	}
	// Output:
	// zen2: IF+ID+EX
	// zen4: IF+ID
}

// The mitigation picture of Section 6.3 on Zen 4: AutoIBRS refuses to
// steer by cross-privilege predictions yet still prefetches their targets.
func ExampleRunMitigations() {
	m, err := phantom.RunMitigations(phantom.Zen4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("AutoIBRS leaves IF:", m.AutoIBRSLeavesIF)
	fmt.Println("AutoIBRS blocks ID:", m.AutoIBRSBlocksID)
	// Output:
	// AutoIBRS leaves IF: true
	// AutoIBRS blocks ID: true
}
