// Command phantom-trace runs a built-in Phantom speculation demo on a
// chosen microarchitecture and prints an instruction-by-instruction trace
// with cycle counts, followed by the attacker-visible performance counters
// and the simulator's ground-truth transient-activity counters. It makes
// the decoupled-frontend behaviour of the machine visible: the victim nop
// executes, a frontend resteer fires, and the transient counters show how
// far the phantom control flow advanced.
//
// Usage:
//
//	phantom-trace [-arch zen2] [-seed 1]
//
// Exit codes: 0 on success, 1 on runtime errors, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/uarch"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the CLI and returns the process exit code. The trace
// goes to stdout so tests (and shell pipelines) can capture it.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phantom-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	archName := fs.String("arch", "zen2", "microarchitecture (zen1..zen4, intel9..intel13)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := run(stdout, *archName, *seed); err != nil {
		fmt.Fprintf(stderr, "phantom-trace: %v\n", err)
		return 1
	}
	return 0
}

func run(w io.Writer, archName string, seed int64) error {
	p, err := uarch.ByName(archName)
	if err != nil {
		return err
	}
	m := pipeline.New(p, 1<<30, seed)
	m.Noise.Level = 0

	maskVal, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
	if !ok {
		return fmt.Errorf("no alias mask on %s", p)
	}

	nextPA := uint64(0x1000000)
	mapCode := func(a *isa.Assembler) error {
		blob, err := a.Bytes()
		if err != nil {
			return err
		}
		base := a.Base() &^ (mem.PageSize - 1)
		end := (a.Base() + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
		if err := m.UserAS.Map(base, nextPA, end-base, mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
			return err
		}
		nextPA += end - base
		return m.UserAS.WriteBytes(a.Base(), blob)
	}

	trainVA := uint64(0x5000000000) + 0x6a0
	victimVA := trainVA ^ maskVal
	targetVA := (trainVA &^ 0xfff) + 0x40000 + 0xac0
	probeVA := uint64(0x5100000000)

	ta := isa.NewAssembler(trainVA)
	ta.JmpReg(isa.RDI)
	if err := mapCode(ta); err != nil {
		return err
	}
	va := isa.NewAssembler(victimVA)
	va.NopSled(16)
	va.Hlt()
	if err := mapCode(va); err != nil {
		return err
	}
	ca := isa.NewAssembler(targetVA)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	if err := mapCode(ca); err != nil {
		return err
	}
	if err := m.UserAS.Map(probeVA, nextPA, mem.PageSize, mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		return err
	}

	fmt.Fprintf(w, "Phantom speculation demo on %s\n", p)
	fmt.Fprintf(w, "  training source A: %#x (jmp* rdi)\n", trainVA)
	fmt.Fprintf(w, "  victim B:          %#x (nops; BTB-aliased with A)\n", victimVA)
	fmt.Fprintf(w, "  target C:          %#x (load [r8]; hlt)\n\n", targetVA)

	tracer := pipeline.NewRingTracer(512)
	m.Tracer = tracer

	fmt.Fprintln(w, "--- training run (architectural jmp* to C) ---")
	m.Regs[isa.RDI] = targetVA
	m.Regs[isa.R8] = probeVA
	trace(w, m, trainVA, 8)

	// Prime the observation state.
	cPA, _ := m.UserAS.Translate(targetVA, mem.AccessRead, false)
	pPA, _ := m.UserAS.Translate(probeVA, mem.AccessRead, false)
	m.Hier.FlushLine(cPA)
	m.Hier.FlushLine(pPA)
	m.Uop.Flush(targetVA)

	fmt.Fprintln(w, "\n--- victim run (decoder-detectable misprediction at B) ---")
	pre := m.Debug
	tracer.Reset()
	m.Regs[isa.R8] = probeVA
	trace(w, m, victimVA, 8)

	fmt.Fprintln(w, "\n--- pipeline event stream of the victim run ---")
	for _, e := range tracer.Events() {
		fmt.Fprintf(w, "  %v\n", e)
	}

	d := m.Debug
	fmt.Fprintln(w, "\n--- attacker-visible performance counters ---")
	fmt.Fprintf(w, "  %v\n", m.Perf)
	fmt.Fprintln(w, "--- simulator ground truth (not attacker-visible) ---")
	fmt.Fprintf(w, "  frontend resteers: %d\n", d.FrontendResteers-pre.FrontendResteers)
	fmt.Fprintf(w, "  transient fetch lines: %d\n", d.TransientFetchLines-pre.TransientFetchLines)
	fmt.Fprintf(w, "  transient decodes:     %d\n", d.TransientDecodes-pre.TransientDecodes)
	fmt.Fprintf(w, "  transient µops:        %d\n", d.TransientUops-pre.TransientUops)
	fmt.Fprintf(w, "  transient loads:       %d\n", d.TransientLoads-pre.TransientLoads)

	fmt.Fprintln(w, "\n--- observation channels after the victim run ---")
	lat, ok := m.TimedFetch(targetVA)
	fmt.Fprintf(w, "  IF: timed fetch of C = %d cycles (ok=%v)  -> %s\n", lat, ok, verdict(lat < p.MemLatency/2))
	fmt.Fprintf(w, "  ID: C in µop cache = %v\n", m.Uop.Present(targetVA))
	dlat, _ := m.TimedLoad(probeVA)
	fmt.Fprintf(w, "  EX: timed load of probe = %d cycles       -> %s\n", dlat, verdict(dlat < p.MemLatency/2))
	return nil
}

func verdict(sig bool) string {
	if sig {
		return "SIGNAL"
	}
	return "no signal"
}

// trace single-steps from entry, printing each instruction with its cycle
// cost.
func trace(w io.Writer, m *pipeline.Machine, entry uint64, limit int) {
	m.RIP = entry
	for i := 0; i < limit; i++ {
		va := m.RIP
		blob := readBytes(m, va, 16)
		in := isa.Decode(blob)
		before := m.Cycle
		res := m.Run(1)
		fmt.Fprintf(w, "  %#012x: %-24v %4d cycles\n", va, in, m.Cycle-before)
		if res.Reason != pipeline.StopLimit {
			fmt.Fprintf(w, "  -> %v\n", res)
			return
		}
	}
}

func readBytes(m *pipeline.Machine, va uint64, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pa, f := m.UserAS.Translate(va+uint64(i), mem.AccessRead, false)
		if f != nil {
			break
		}
		out = append(out, m.Phys.Read8(pa))
	}
	return out
}
