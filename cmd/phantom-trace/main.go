// Command phantom-trace runs a built-in Phantom speculation demo on a
// chosen microarchitecture and prints an instruction-by-instruction trace
// with cycle counts, followed by the attacker-visible performance counters
// and the simulator's ground-truth transient-activity counters. It makes
// the decoupled-frontend behaviour of the machine visible: the victim nop
// executes, a frontend resteer fires, and the transient counters show how
// far the phantom control flow advanced.
//
// Usage:
//
//	phantom-trace [-arch zen2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/uarch"
)

func main() {
	archName := flag.String("arch", "zen2", "microarchitecture (zen1..zen4, intel9..intel13)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*archName, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "phantom-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(archName string, seed int64) error {
	p, err := uarch.ByName(archName)
	if err != nil {
		return err
	}
	m := pipeline.New(p, 1<<30, seed)
	m.Noise.Level = 0

	maskVal, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
	if !ok {
		return fmt.Errorf("no alias mask on %s", p)
	}

	nextPA := uint64(0x1000000)
	mapCode := func(a *isa.Assembler) error {
		blob, err := a.Bytes()
		if err != nil {
			return err
		}
		base := a.Base() &^ (mem.PageSize - 1)
		end := (a.Base() + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
		if err := m.UserAS.Map(base, nextPA, end-base, mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
			return err
		}
		nextPA += end - base
		return m.UserAS.WriteBytes(a.Base(), blob)
	}

	trainVA := uint64(0x5000000000) + 0x6a0
	victimVA := trainVA ^ maskVal
	targetVA := (trainVA &^ 0xfff) + 0x40000 + 0xac0
	probeVA := uint64(0x5100000000)

	ta := isa.NewAssembler(trainVA)
	ta.JmpReg(isa.RDI)
	if err := mapCode(ta); err != nil {
		return err
	}
	va := isa.NewAssembler(victimVA)
	va.NopSled(16)
	va.Hlt()
	if err := mapCode(va); err != nil {
		return err
	}
	ca := isa.NewAssembler(targetVA)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	if err := mapCode(ca); err != nil {
		return err
	}
	if err := m.UserAS.Map(probeVA, nextPA, mem.PageSize, mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		return err
	}

	fmt.Printf("Phantom speculation demo on %s\n", p)
	fmt.Printf("  training source A: %#x (jmp* rdi)\n", trainVA)
	fmt.Printf("  victim B:          %#x (nops; BTB-aliased with A)\n", victimVA)
	fmt.Printf("  target C:          %#x (load [r8]; hlt)\n\n", targetVA)

	tracer := pipeline.NewRingTracer(512)
	m.Tracer = tracer

	fmt.Println("--- training run (architectural jmp* to C) ---")
	m.Regs[isa.RDI] = targetVA
	m.Regs[isa.R8] = probeVA
	trace(m, trainVA, 8)

	// Prime the observation state.
	cPA, _ := m.UserAS.Translate(targetVA, mem.AccessRead, false)
	pPA, _ := m.UserAS.Translate(probeVA, mem.AccessRead, false)
	m.Hier.FlushLine(cPA)
	m.Hier.FlushLine(pPA)
	m.Uop.Flush(targetVA)

	fmt.Println("\n--- victim run (decoder-detectable misprediction at B) ---")
	pre := m.Debug
	tracer.Reset()
	m.Regs[isa.R8] = probeVA
	trace(m, victimVA, 8)

	fmt.Println("\n--- pipeline event stream of the victim run ---")
	for _, e := range tracer.Events() {
		fmt.Printf("  %v\n", e)
	}

	d := m.Debug
	fmt.Println("\n--- attacker-visible performance counters ---")
	fmt.Printf("  %v\n", m.Perf)
	fmt.Println("--- simulator ground truth (not attacker-visible) ---")
	fmt.Printf("  frontend resteers: %d\n", d.FrontendResteers-pre.FrontendResteers)
	fmt.Printf("  transient fetch lines: %d\n", d.TransientFetchLines-pre.TransientFetchLines)
	fmt.Printf("  transient decodes:     %d\n", d.TransientDecodes-pre.TransientDecodes)
	fmt.Printf("  transient µops:        %d\n", d.TransientUops-pre.TransientUops)
	fmt.Printf("  transient loads:       %d\n", d.TransientLoads-pre.TransientLoads)

	fmt.Println("\n--- observation channels after the victim run ---")
	lat, ok := m.TimedFetch(targetVA)
	fmt.Printf("  IF: timed fetch of C = %d cycles (ok=%v)  -> %s\n", lat, ok, verdict(lat < p.MemLatency/2))
	fmt.Printf("  ID: C in µop cache = %v\n", m.Uop.Present(targetVA))
	dlat, _ := m.TimedLoad(probeVA)
	fmt.Printf("  EX: timed load of probe = %d cycles       -> %s\n", dlat, verdict(dlat < p.MemLatency/2))
	return nil
}

func verdict(sig bool) string {
	if sig {
		return "SIGNAL"
	}
	return "no signal"
}

// trace single-steps from entry, printing each instruction with its cycle
// cost.
func trace(m *pipeline.Machine, entry uint64, limit int) {
	m.RIP = entry
	for i := 0; i < limit; i++ {
		va := m.RIP
		blob := readBytes(m, va, 16)
		in := isa.Decode(blob)
		before := m.Cycle
		res := m.Run(1)
		fmt.Printf("  %#012x: %-24v %4d cycles\n", va, in, m.Cycle-before)
		if res.Reason != pipeline.StopLimit {
			fmt.Printf("  -> %v\n", res)
			return
		}
	}
}

func readBytes(m *pipeline.Machine, va uint64, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pa, f := m.UserAS.Translate(va+uint64(i), mem.AccessRead, false)
		if f != nil {
			break
		}
		out = append(out, m.Phys.Read8(pa))
	}
	return out
}
