package main

import "testing"

func TestTraceDemoRuns(t *testing.T) {
	for _, arch := range []string{"zen1", "zen2", "zen4", "intel13"} {
		if err := run(arch, 1); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
	if err := run("i486", 1); err == nil {
		t.Fatal("bogus arch accepted")
	}
}
