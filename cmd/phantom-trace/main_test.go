package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestTraceDemoRuns(t *testing.T) {
	for _, arch := range []string{"zen1", "zen2", "zen4", "intel13"} {
		if err := run(io.Discard, arch, 1); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
	if err := run(io.Discard, "i486", 1); err == nil {
		t.Fatal("bogus arch accepted")
	}
}

// TestExitCodes pins the CLI convention shared by all three binaries:
// 0 success, 1 runtime error, 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"default run", nil, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad arch", []string{"-arch", "i486"}, 1},
	}
	for _, c := range cases {
		if got := realMain(c.args, io.Discard, io.Discard); got != c.want {
			t.Errorf("%s: realMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}

// TestTraceGolden pins the full demo trace for zen2 at seed 1 against a
// committed golden file. The demo is deterministic (fixed seed, noise
// level 0), so any diff is a real behaviour change in the pipeline, the
// decoder, or the trace formatting. Refresh intentionally with:
//
//	go test ./cmd/phantom-trace -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "zen2", 1); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_zen2_seed1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverges from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
