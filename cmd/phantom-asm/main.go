// Command phantom-asm is a small assembler/disassembler utility for the
// simulated ISA. It decodes hex byte strings, and can dump the gadget
// sites of the simulated kernel image (the paper's Listings 1-4) as they
// are laid out in memory.
//
// Usage:
//
//	phantom-asm -hex "0f 1f 44 00 00 55 48 89 e5"
//	phantom-asm -asm 'mov rax, 42; jmp *rdi'
//	echo 'loop: add rax, 1; jmp loop' | phantom-asm -asm -
//	phantom-asm -kernel
//
// Exit codes: 0 on success, 1 on runtime errors, 2 on usage errors
// (no mode selected, or bad flags) — matching cmd/phantom.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"phantom/internal/isa"
	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// realMain runs the CLI and returns the process exit code.
func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phantom-asm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hexStr := fs.String("hex", "", "hex bytes to disassemble (spaces optional)")
	asmSrc := fs.String("asm", "", "assembly source to assemble ('-' reads stdin)")
	dumpKernel := fs.Bool("kernel", false, "disassemble the simulated kernel's gadget sites")
	base := fs.Uint64("base", 0x400000, "virtual base address")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var err error
	switch {
	case *hexStr != "":
		err = disasmHex(stdout, *hexStr, *base)
	case *asmSrc != "":
		err = assembleText(stdout, stdin, *asmSrc, *base)
	case *dumpKernel:
		err = dumpGadgets(stdout)
	default:
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "phantom-asm: %v\n", err)
		return 1
	}
	return 0
}

// assembleText assembles source (or stdin when src is "-") and prints the
// machine code alongside its disassembly.
func assembleText(w io.Writer, stdin io.Reader, src string, base uint64) error {
	if src == "-" {
		b, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		src = string(b)
	}
	blob, syms, err := isa.Assemble(src, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d bytes at %#x\n", len(blob), base)
	for _, line := range isa.Disassemble(blob, base) {
		fmt.Fprintln(w, line)
	}
	if len(syms) > 0 {
		fmt.Fprintln(w, "symbols:")
		for _, s := range syms {
			fmt.Fprintf(w, "  %#012x %s\n", s.Addr, s.Name)
		}
	}
	fmt.Fprintf(w, "hex: %x\n", blob)
	return nil
}

func disasmHex(w io.Writer, s string, base uint64) error {
	s = strings.NewReplacer(" ", "", "\t", "", "\n", "", "0x", "").Replace(s)
	if len(s)%2 != 0 {
		return fmt.Errorf("odd-length hex string")
	}
	blob := make([]byte, len(s)/2)
	if _, err := fmt.Sscanf(s, "%x", &blob); err != nil {
		// Parse manually: Sscanf %x wants the exact length.
		for i := 0; i < len(blob); i++ {
			if _, err := fmt.Sscanf(s[2*i:2*i+2], "%02x", &blob[i]); err != nil {
				return fmt.Errorf("bad hex at byte %d: %v", i, err)
			}
		}
	}
	for _, line := range isa.Disassemble(blob, base) {
		fmt.Fprintln(w, line)
	}
	return nil
}

func dumpGadgets(w io.Writer) error {
	k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: 1, NoiseLevel: 0})
	if err != nil {
		return err
	}
	sites := []struct {
		name  string
		label string
		n     int
		ref   string
	}{
		{"syscall entry", "entry", 20, "dispatcher"},
		{"__task_pid_nr_ns", "getpid_site", 7, "Listing 1 (offset 0xf6520)"},
		{"__fdget_pos", "fdget_pos", 8, "Listing 2 (offset 0x41db60)"},
		{"disclosure gadget", "disclosure_gadget", 2, "Listing 3 (offset 0x41da52)"},
		{"read_data (MDS module)", "mds", 10, "Listing 4"},
		{"P3 disclosure gadget", "mds_disclosure", 5, "Section 6.1"},
		{"covert module", "covert", 5, "Section 6.4"},
	}
	for _, s := range sites {
		va := k.Symbol(s.label)
		fmt.Fprintf(w, "--- %s — %s ---\n", s.name, s.ref)
		blob, err := readKernel(k, va, s.n*10)
		if err != nil {
			return err
		}
		off := 0
		for i := 0; i < s.n && off < len(blob); i++ {
			in := isa.Decode(blob[off:])
			fmt.Fprintf(w, "%#012x (+%#x): %v\n", va+uint64(off), va+uint64(off)-k.ImageBase, in)
			off += in.Len
		}
		fmt.Fprintln(w)
	}
	return nil
}

func readKernel(k *kernel.Kernel, va uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		pa, f := k.M.KernelAS.Translate(va+uint64(i), mem.AccessRead, false)
		if f != nil {
			return out[:i], nil
		}
		out[i] = k.M.Phys.Read8(pa)
	}
	return out, nil
}
