package main

import (
	"io"
	"strings"
	"testing"
)

func TestDisasmHex(t *testing.T) {
	if err := disasmHex(io.Discard, "0f1f440000554889e5", 0x400000); err != nil {
		t.Fatal(err)
	}
	if err := disasmHex(io.Discard, "0f 1f 44 00 00", 0); err != nil {
		t.Fatal(err)
	}
	if err := disasmHex(io.Discard, "0f1", 0); err == nil {
		t.Fatal("odd-length hex accepted")
	}
	if err := disasmHex(io.Discard, "zz", 0); err == nil {
		t.Fatal("non-hex accepted")
	}
}

func TestDumpGadgets(t *testing.T) {
	if err := dumpGadgets(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleText(t *testing.T) {
	if err := assembleText(io.Discard, nil, "start: mov rax, 1; jmp start", 0x400000); err != nil {
		t.Fatal(err)
	}
	if err := assembleText(io.Discard, nil, "bogus", 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if err := assembleText(io.Discard, strings.NewReader("mov rax, 7"), "-", 0); err != nil {
		t.Fatalf("stdin source: %v", err)
	}
}

// TestExitCodes pins the CLI convention shared by all three binaries:
// 0 success, 1 runtime error, 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad hex", []string{"-hex", "zz"}, 1},
		{"bad asm", []string{"-asm", "bogus"}, 1},
		{"good hex", []string{"-hex", "0f1f440000"}, 0},
		{"good asm", []string{"-asm", "mov rax, 1"}, 0},
	}
	for _, c := range cases {
		if got := realMain(c.args, strings.NewReader(""), io.Discard, io.Discard); got != c.want {
			t.Errorf("%s: realMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}
