package main

import "testing"

func TestDisasmHex(t *testing.T) {
	if err := disasmHex("0f1f440000554889e5", 0x400000); err != nil {
		t.Fatal(err)
	}
	if err := disasmHex("0f 1f 44 00 00", 0); err != nil {
		t.Fatal(err)
	}
	if err := disasmHex("0f1", 0); err == nil {
		t.Fatal("odd-length hex accepted")
	}
	if err := disasmHex("zz", 0); err == nil {
		t.Fatal("non-hex accepted")
	}
}

func TestDumpGadgets(t *testing.T) {
	if err := dumpGadgets(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleText(t *testing.T) {
	if err := assembleText("start: mov rax, 1; jmp start", 0x400000); err != nil {
		t.Fatal(err)
	}
	if err := assembleText("bogus", 0); err == nil {
		t.Fatal("bad source accepted")
	}
}
