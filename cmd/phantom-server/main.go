// Command phantom-server serves the phantom experiments over HTTP: a
// long-running process that answers the same questions as the one-shot
// CLI, but with a content-addressed result cache, request coalescing,
// and bounded-queue backpressure in front of the simulator.
//
// Usage:
//
//	phantom-server [-addr host:port] [flags]
//
// API (JSON; see EXPERIMENTS.md "Serving mode" for curl examples):
//
//	POST /v1/experiments     {"experiment":"kaslr","archs":["zen3"],"runs":20}
//	                         or a JSON array of such objects (batch)
//	GET  /v1/results/{id}    re-fetch a cached result by content address
//	GET  /v1/arches          servable experiments, arches, aliases
//	GET  /healthz            liveness    GET /readyz   readiness (503 draining)
//	GET  /metrics            telemetry snapshot (JSON; ?format=text)
//
// Results are deterministic in (experiment, archs, seed, options), so
// the response body's "output" field is byte-identical to the phantom
// CLI's stdout for the same request, cache hits included.
//
// Overload returns 429 with a Retry-After estimate instead of queueing
// unboundedly. SIGINT/SIGTERM drain gracefully: readiness flips to 503,
// admitted evaluations finish, then the listener closes; a drain that
// exceeds -drain-timeout exits 1 with whatever was still running
// cancelled.
//
// -store-dir adds a durable tier under the cache: every computed result
// is written through to an append-only on-disk store, and a restarted
// server answers previously computed requests from disk without
// re-simulating. -peers + -node-id shard the keyspace across a static
// cluster: each node owns a consistent-hash share of the request keys,
// forwards non-owned requests to their owner (one hop), and fans
// separable multi-arch requests out across the fleet; a dead peer
// degrades to local computation, never to a client error.
//
// Exit codes: 0 clean shutdown, 1 runtime errors, 2 usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"phantom/internal/cluster"
	"phantom/internal/service"
	"phantom/internal/store"
	"phantom/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stderr))
}

// realMain runs the server until ctx is cancelled (the signal path) and
// returns the process exit code. Factored from main for tests.
func realMain(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("phantom-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8437", "listen address (port 0 picks an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	workers := fs.Int("workers", 0, "concurrent evaluations (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "queued evaluations beyond the running ones before 429 (0 = 2x workers)")
	jobs := fs.Int("jobs", 0, "sweep workers per evaluation (0 = GOMAXPROCS/workers)")
	cacheMB := fs.Int64("cache-mb", 64, "result cache budget in MiB (negative disables caching)")
	baseTimeout := fs.Duration("timeout", time.Minute, "base per-evaluation deadline; heavy experiments get a multiple of it")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight evaluations")
	metricsPath := fs.String("metrics", "", "write a JSONL telemetry run log to this file")
	metricsSample := fs.Int("metrics-sample", 1, "record every Nth sweep job in the run log and latency histogram")
	storeDir := fs.String("store-dir", "", "durable result store directory (empty disables the store)")
	storeBudget := fs.Int64("store-budget", 0, "store size budget in MiB before eviction + compaction (0 = unlimited)")
	peersFlag := fs.String("peers", "", "static cluster peer list: comma-separated id=host:port, this node included")
	nodeID := fs.String("node-id", "", "this node's id in -peers (required with -peers)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "phantom-server: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if (*peersFlag == "") != (*nodeID == "") {
		fmt.Fprintf(stderr, "phantom-server: -peers and -node-id must be set together\n")
		return 2
	}
	if *storeBudget < 0 {
		fmt.Fprintf(stderr, "phantom-server: -store-budget must be >= 0\n")
		return 2
	}

	var rtr *cluster.Router
	if *peersFlag != "" {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintf(stderr, "phantom-server: -peers: %v\n", err)
			return 2
		}
		rtr, err = cluster.NewRouter(cluster.Config{Self: *nodeID, Peers: peers})
		if err != nil {
			fmt.Fprintf(stderr, "phantom-server: %v\n", err)
			return 2
		}
	}

	// The telemetry hub is always on in the server — /metrics is part of
	// the API — with the run log as an optional extra sink.
	tcfg := telemetry.Config{Label: "serve", SampleEvery: *metricsSample}
	var logFile *os.File
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "phantom-server: -metrics: %v\n", err)
			return 1
		}
		logFile = f
		tcfg.RunLog = f
	}
	telemetry.Enable(tcfg)
	code := 0
	defer func() {
		if err := telemetry.Disable(); err != nil && code == 0 {
			fmt.Fprintf(stderr, "phantom-server: telemetry: %v\n", err)
			code = 1
		}
		if logFile != nil {
			if err := logFile.Close(); err != nil && code == 0 {
				fmt.Fprintf(stderr, "phantom-server: -metrics: %v\n", err)
				code = 1
			}
		}
	}()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{Budget: *storeBudget << 20})
		if err != nil {
			fmt.Fprintf(stderr, "phantom-server: -store-dir: %v\n", err)
			code = 1
			return code
		}
		defer func() {
			if err := st.Close(); err != nil && code == 0 {
				fmt.Fprintf(stderr, "phantom-server: store close: %v\n", err)
				code = 1
			}
		}()
		sst := st.Stats()
		fmt.Fprintf(stderr, "phantom-server: store %s: %d records in %d segments (%d corrupt skipped, %d torn truncated)\n",
			*storeDir, sst.Records, sst.Segments, sst.CorruptSkipped, sst.TornTruncated)
	}

	svc := service.NewServer(service.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		Jobs:        *jobs,
		CacheBytes:  *cacheMB << 20,
		BaseTimeout: *baseTimeout,
		Store:       st,
		Router:      rtr,
	})
	if rtr != nil {
		fmt.Fprintf(stderr, "phantom-server: cluster node %s in a %d-peer ring\n", rtr.Self().ID, len(rtr.Health()))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "phantom-server: %v\n", err)
		code = 1
		return code
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "phantom-server: -addr-file: %v\n", err)
			ln.Close()
			code = 1
			return code
		}
	}
	fmt.Fprintf(stderr, "phantom-server: listening on http://%s\n", bound)

	httpSrv := &http.Server{
		Handler: svc.Handler(),
		// BaseContext ties request contexts to the process context, so a
		// drain also cancels evaluations whose clients are still
		// connected once the drain deadline passes.
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "phantom-server: %v\n", err)
		code = 1
		return code
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "phantom-server: draining (max %s)...\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "phantom-server: drain: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "phantom-server: shutdown: %v\n", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintf(stderr, "phantom-server: drained cleanly\n")
	}
	return code
}
