package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServerLifecycle boots the real binary entry point on an
// ephemeral port, exercises the API, then cancels the context (the
// SIGTERM path) and expects a clean drain: exit code 0 and a
// summary-terminated -metrics run log.
func TestServerLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real server")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	logPath := filepath.Join(dir, "run.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	exited := make(chan int, 1)
	go func() {
		exited <- realMain(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-workers", "2", "-metrics", logPath,
		}, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never wrote its address file")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/experiments", "application/json",
		strings.NewReader(`{"experiment":"chain","archs":["zen2"]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var res struct {
		ID     string `json:"id"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID == "" || !strings.Contains(res.Output, "Full exploit chain") {
		t.Errorf("served result = %+v", res)
	}

	// /metrics is part of the API: the always-on hub must be counting.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "serve_requests") {
		t.Errorf("metrics snapshot missing serve_requests: %s", metrics)
	}

	cancel()
	select {
	case code := <-exited:
		if code != 0 {
			t.Errorf("drained server exited %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after context cancellation")
	}
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("run log: %v", err)
	}
	if !strings.Contains(string(log), `"type":"summary"`) {
		t.Error("server shutdown did not flush a summary record to the run log")
	}
}

// TestUsageErrors pins the exit-code convention shared with the other
// binaries.
func TestUsageErrors(t *testing.T) {
	ctx := context.Background()
	if code := realMain(ctx, []string{"-definitely-not-a-flag"}, io.Discard); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"stray-arg"}, io.Discard); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"-addr", "256.0.0.1:99999"}, io.Discard); code != 1 {
		t.Errorf("unbindable address: exit %d, want 1", code)
	}
	if code := realMain(ctx, []string{"-h"}, io.Discard); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if code := realMain(ctx, []string{"-peers", "n1=127.0.0.1:1"}, io.Discard); code != 2 {
		t.Errorf("-peers without -node-id: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"-node-id", "n1"}, io.Discard); code != 2 {
		t.Errorf("-node-id without -peers: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"-peers", "garbage", "-node-id", "n1"}, io.Discard); code != 2 {
		t.Errorf("malformed -peers: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"-peers", "n1=127.0.0.1:1,n2=127.0.0.1:2", "-node-id", "ghost"}, io.Discard); code != 2 {
		t.Errorf("-node-id outside -peers: exit %d, want 2", code)
	}
	if code := realMain(ctx, []string{"-store-budget", "-1"}, io.Discard); code != 2 {
		t.Errorf("negative -store-budget: exit %d, want 2", code)
	}
}

// TestStoreDirPersistsAcrossRestart boots the server twice on the same
// -store-dir: the second boot must answer a request the first computed
// straight from the durable store, without re-simulating.
func TestStoreDirPersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real server twice")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "results")
	const reqBody = `{"experiment":"chain","archs":["zen2"]}`

	run := func(gen int) (output string, metrics string) {
		t.Helper()
		addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d", gen))
		ctx, cancel := context.WithCancel(context.Background())
		exited := make(chan int, 1)
		go func() {
			exited <- realMain(ctx, []string{
				"-addr", "127.0.0.1:0", "-addr-file", addrFile,
				"-workers", "2", "-store-dir", storeDir,
			}, io.Discard)
		}()
		var addr string
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
				addr = strings.TrimSpace(string(data))
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if addr == "" {
			t.Fatal("server never wrote its address file")
		}
		base := "http://" + addr
		resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatalf("gen %d POST: %v", gen, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gen %d POST = %d: %s", gen, resp.StatusCode, body)
		}
		var res struct {
			Output string `json:"output"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("gen %d metrics: %v", gen, err)
		}
		mbody, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		cancel()
		select {
		case code := <-exited:
			if code != 0 {
				t.Fatalf("gen %d exited %d, want 0", gen, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("gen %d did not exit", gen)
		}
		return res.Output, string(mbody)
	}

	out1, _ := run(1)
	out2, metrics2 := run(2)
	if out1 != out2 {
		t.Error("restarted server's answer diverged from the original")
	}
	if !strings.Contains(metrics2, "serve_store_hits") {
		t.Errorf("second boot metrics missing serve_store_hits:\n%s", metrics2)
	}
	if strings.Contains(metrics2, "serve_simulations") {
		t.Errorf("second boot simulated despite a warm store:\n%s", metrics2)
	}
}
