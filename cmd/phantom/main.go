// Command phantom regenerates the tables and figures of "Phantom:
// Exploiting Decoder-detectable Mispredictions" (MICRO 2023) on the
// simulated machines.
//
// Usage:
//
//	phantom <experiment> [flags]
//
// Experiments:
//
//	table1       training×victim misprediction matrix (Table 1)
//	fig6         speculative-decode page-offset sweep (Figure 6)
//	fig7         cross-privilege BTB function recovery (Figure 7)
//	covert       fetch and execute covert channels (Table 2)
//	kaslr        kernel image KASLR derandomization (Table 3)
//	physmap      physmap KASLR derandomization (Table 4)
//	physaddr     physical address of an attacker page (Table 5)
//	mds          MDS-gadget kernel memory leak (Section 7.4)
//	mitigations  SuppressBPOnNonBr / AutoIBRS / IBPB evaluation (Sections 6.3, 8)
//	sls          straight-line speculation cell (Table 1, footnote c)
//	chain        full Section 7 exploit chain on one boot
//	all          everything above with default parameters
//
// Common flags: -arch, -seed, -runs, -jobs; see -h of each experiment.
// Multi-run experiments fan their (arch, reboot) jobs over a worker pool
// of -jobs workers (default GOMAXPROCS); every run derives its own seed,
// so the output is byte-identical whatever the pool size.
//
// Telemetry flags (before the experiment name):
//
//	phantom -metrics run.jsonl -progress -debug-addr localhost:6060 kaslr -runs 100
//
// -metrics writes a JSONL run log (one record per sweep job plus a final
// summary; schema in DESIGN.md), -progress renders a live stderr status
// line for the sweeps, and -debug-addr serves net/http/pprof and a
// /metrics snapshot while the experiment runs. Telemetry observes the
// harness only: experiment output stays byte-identical with it on, off,
// or sampled (-metrics-sample N).
//
// Exit codes: 0 on success, 1 on runtime errors, 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"phantom"
	"phantom/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stderr))
}

// errUsage marks command-line mistakes; realMain turns it into exit
// code 2 (runtime failures exit 1).
var errUsage = errors.New("usage error")

// parseFlags parses a subcommand flag set, folding parse failures into
// the usage-error exit path.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp // usage already printed; exits 0
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	return nil
}

// realMain runs the CLI and returns the process exit code.
func realMain(args []string, stderr io.Writer) int {
	top := flag.NewFlagSet("phantom", flag.ContinueOnError)
	top.SetOutput(stderr)
	top.Usage = func() { usage(stderr) }
	metricsPath := top.String("metrics", "", "write a JSONL telemetry run log to this file")
	metricsSample := top.Int("metrics-sample", 1, "record every Nth sweep job in the run log and latency histogram")
	progress := top.Bool("progress", false, "render a live sweep progress line on stderr")
	debugAddr := top.String("debug-addr", "", "serve net/http/pprof and /metrics on this address while running")
	if err := top.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	rest := top.Args()
	if len(rest) == 0 {
		usage(stderr)
		return 2
	}
	cmd, cargs := rest[0], rest[1:]
	switch cmd {
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	}
	fn, ok := runners[cmd]
	if !ok {
		fmt.Fprintf(stderr, "phantom: unknown experiment %q\n\n", cmd)
		usage(stderr)
		return 2
	}

	// Telemetry session: enabled by any of the observability flags,
	// torn down (summary record, final progress line) before exit.
	tcfg := telemetry.Config{Label: cmd, SampleEvery: *metricsSample, Progress: nil}
	enable := false
	var logFile *os.File
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "phantom: -metrics: %v\n", err)
			return 1
		}
		logFile = f
		tcfg.RunLog = f
		enable = true
	}
	if *progress {
		tcfg.Progress = stderr
		enable = true
	}
	var debug *telemetry.DebugServer
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "phantom: %v\n", err)
			return 1
		}
		debug = srv
		fmt.Fprintf(stderr, "phantom: debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr())
		enable = true
	}
	if enable {
		telemetry.Enable(tcfg)
	}

	err := fn(cargs)

	code := 0
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
	case errors.Is(err, errUsage):
		fmt.Fprintf(stderr, "phantom %s: %v\n", cmd, err)
		code = 2
	default:
		fmt.Fprintf(stderr, "phantom %s: %v\n", cmd, err)
		code = 1
	}
	if enable {
		if derr := telemetry.Disable(); derr != nil && code == 0 {
			fmt.Fprintf(stderr, "phantom: telemetry: %v\n", derr)
			code = 1
		}
	}
	if logFile != nil {
		if cerr := logFile.Close(); cerr != nil && code == 0 {
			fmt.Fprintf(stderr, "phantom: -metrics: %v\n", cerr)
			code = 1
		}
	}
	if debug != nil {
		debug.Close()
	}
	return code
}

// runners maps every experiment name to its implementation.
var runners = map[string]func([]string) error{
	"table1": cmdTable1, "fig6": cmdFig6, "fig7": cmdFig7,
	"covert": cmdCovert, "kaslr": cmdKASLR, "physmap": cmdPhysmap,
	"physaddr": cmdPhysAddr, "mds": cmdMDS, "mitigations": cmdMitigations,
	"sls": cmdSLS, "report": cmdReport, "chain": cmdChain, "all": cmdAll,
}

func usage(w io.Writer) {
	fmt.Fprint(w, `phantom — reproduce the MICRO'23 Phantom paper on a simulated machine

usage: phantom [-metrics file] [-progress] [-debug-addr addr] <experiment> [flags]

experiments:
  table1       training×victim misprediction matrix   (Table 1)
  fig6         speculative decode vs page offset      (Figure 6)
  fig7         BTB index-function recovery            (Figure 7)
  covert       fetch/execute covert channels          (Table 2)
  kaslr        kernel image KASLR break               (Table 3)
  physmap      physmap KASLR break                    (Table 4)
  physaddr     physical address derandomization       (Table 5)
  mds          MDS-gadget kernel memory leak          (Section 7.4)
  mitigations  mitigation evaluation                  (Sections 6.3, 8)
  sls          straight-line speculation cell         (Table 1, footnote c)
  report       full paper-vs-measured Markdown report
  chain        full Section 7 exploit chain
  all          run everything with defaults
`)
}

// emitJSON pretty-prints v to stdout.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// parseArchs resolves a comma-separated -arch value.
func parseArchs(spec string) ([]phantom.Microarch, error) {
	switch spec {
	case "all":
		return phantom.AllMicroarchs(), nil
	case "amd":
		return phantom.AMDMicroarchs(), nil
	}
	var out []phantom.Microarch
	for _, s := range strings.Split(spec, ",") {
		a := phantom.Microarch(strings.TrimSpace(s))
		found := false
		for _, known := range phantom.AllMicroarchs() {
			if a == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown microarchitecture %q", s)
		}
		out = append(out, a)
	}
	return out, nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	arch := fs.String("arch", "all", "microarchitecture(s): name, comma list, amd, or all")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 6, "per-cell trials")
	noise := fs.Float64("noise", 0, "noise level (0 = lab conditions)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		tb, err := phantom.RunTable1(a, phantom.Table1Options{Seed: *seed, Trials: *trials, Noise: *noise})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(tb); err != nil {
				return err
			}
			continue
		}
		fmt.Println(tb)
	}
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	arch := fs.String("arch", "zen2,zen4", "microarchitecture(s); the paper plots zen2 and zen4")
	seed := fs.Int64("seed", 1, "random seed")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of an ASCII chart")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	series, err := phantom.RunFig6Sweep(archs, *seed, *jobs)
	if err != nil {
		return err
	}
	for _, s := range series {
		if *asJSON {
			if err := emitJSON(s); err != nil {
				return err
			}
			continue
		}
		fmt.Println(s)
	}
	return nil
}

func cmdFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ContinueOnError)
	arch := fs.String("arch", "zen3", "microarchitecture (the paper reverse engineers zen3)")
	seed := fs.Int64("seed", 9, "random seed")
	samples := fs.Int("samples", 22, "independent collisions to gather")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if !*asJSON {
		fmt.Printf("recovering BTB functions on %s (sampling may take ~10s)...\n",
			strings.Join(archNames(archs), ", "))
	}
	recovered, err := phantom.RunFig7Sweep(archs, phantom.Fig7Options{Seed: *seed, Samples: *samples, Jobs: *jobs})
	if err != nil {
		return err
	}
	for _, f := range recovered {
		if *asJSON {
			if err := emitJSON(f); err != nil {
				return err
			}
			continue
		}
		fmt.Println(f)
	}
	return nil
}

// archNames renders a microarch list for progress messages.
func archNames(archs []phantom.Microarch) []string {
	var out []string
	for _, a := range archs {
		out = append(out, string(a))
	}
	return out
}

func cmdCovert(args []string) error {
	fs := flag.NewFlagSet("covert", flag.ContinueOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	bits := fs.Int("bits", 4096, "message bits per run")
	runs := fs.Int("runs", 10, "runs (median reported)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	opts := phantom.Table2Options{Seed: *seed, Bits: *bits, Runs: *runs, Jobs: *jobs}
	rows, err := phantom.RunTable2Fetch(archs, opts)
	if err != nil {
		return err
	}
	execRows, err := phantom.RunTable2Execute(archs, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(map[string]any{"fetch": rows, "execute": execRows})
	}
	fmt.Print(phantom.FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows))
	fmt.Println()
	fmt.Print(phantom.FormatTable2("Table 2 (bottom) — execute covert channel (P2)", execRows))
	return nil
}

func cmdKASLR(args []string) error {
	fs := flag.NewFlagSet("kaslr", flag.ContinueOnError)
	arch := fs.String("arch", "zen2,zen3,zen4", "microarchitecture(s); Table 3 uses zen2, zen3, zen4")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	rows, err := phantom.RunTable3(archs, phantom.DerandOptions{Seed: *seed, Runs: *runs, Jobs: *jobs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 3 — kernel image KASLR via P1 (%d runs)", *runs), rows))
	return nil
}

func cmdPhysmap(args []string) error {
	fs := flag.NewFlagSet("physmap", flag.ContinueOnError)
	arch := fs.String("arch", "zen1,zen2", "microarchitecture(s); P2 works on zen1, zen2")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	rows, err := phantom.RunTable4(archs, phantom.DerandOptions{Seed: *seed, Runs: *runs, Jobs: *jobs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 4 — physmap KASLR via P2 (%d runs)", *runs), rows))
	return nil
}

func cmdPhysAddr(args []string) error {
	fs := flag.NewFlagSet("physaddr", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rows, err := phantom.RunTable5(phantom.DerandOptions{Seed: *seed, Runs: *runs, Jobs: *jobs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 5 — physical address of a user page (%d runs)", *runs), rows))
	return nil
}

func cmdMDS(args []string) error {
	fs := flag.NewFlagSet("mds", flag.ContinueOnError)
	arch := fs.String("arch", "zen2", "microarchitecture (the paper's PoC runs on zen2)")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	bytes := fs.Int("bytes", 4096, "bytes to leak per run")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		rep, err := phantom.RunMDSExperiment(a, phantom.MDSOptions{Seed: *seed, Runs: *runs, Bytes: *bytes, Jobs: *jobs})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
			continue
		}
		fmt.Println(rep)
	}
	return nil
}

func cmdMitigations(args []string) error {
	fs := flag.NewFlagSet("mitigations", flag.ContinueOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		m, err := phantom.RunMitigations(a, *seed)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(m); err != nil {
				return err
			}
			continue
		}
		fmt.Println(m)
	}
	return nil
}

func cmdSLS(args []string) error {
	fs := flag.NewFlagSet("sls", flag.ContinueOnError)
	arch := fs.String("arch", "all", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	fmt.Println("Straight-line speculation past an unpredicted return (Spectre-SLS,")
	fmt.Println("Table 1 footnote c): the sequential bytes after a ret execute")
	fmt.Println("transiently on AMD parts; Intel frontends stall instead.")
	fmt.Println()
	for _, a := range archs {
		tb, err := phantom.RunTable1(a, phantom.Table1Options{Seed: *seed, Trials: 4})
		if err != nil {
			return err
		}
		var reach phantom.StageReach
		for _, row := range tb.Cells {
			for _, c := range row {
				if c.Training == "non-branch" && c.Victim == "ret" {
					reach = c.Reach
				}
			}
		}
		fmt.Printf("  %-26s %v\n", a.ModelName(), reach)
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "runs per derandomization experiment")
	bits := fs.Int("bits", 1024, "bits per covert-channel run")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	return phantom.GenerateReport(os.Stdout, phantom.ReportOptions{
		Seed: *seed, Runs: *runs, Bits: *bits, Jobs: *jobs,
	})
}

func cmdChain(args []string) error {
	fs := flag.NewFlagSet("chain", flag.ContinueOnError)
	arch := fs.String("arch", "zen2", "microarchitecture")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		sys, err := phantom.NewSystem(a, phantom.SystemConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("=== Full exploit chain on %s (seed %d) ===\n", a.ModelName(), *seed)
		img, err := sys.BreakImageKASLR()
		if err != nil {
			return err
		}
		fmt.Printf("1. kernel image:  %#x  correct=%v  (%.4fs sim)\n", img.Guess, img.Correct, img.Seconds)
		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			return err
		}
		fmt.Printf("2. physmap:       %#x  correct=%v  (%.4fs sim)\n", pm.Guess, pm.Correct, pm.Seconds)
		pa, err := sys.FindPhysAddr(img.Guess, pm.Guess)
		if err != nil {
			return err
		}
		fmt.Printf("3. page phys:     %#x  correct=%v  (%.4fs sim)\n", pa.Guess, pa.Correct, pa.Seconds)
		secretVA, secret := sys.SecretAddr()
		leak, err := sys.LeakKernelMemory(secretVA, 64)
		if err != nil {
			// An exploit coming up empty on one boot is a chain result,
			// not a harness error — steps 1-3 likewise report correct=false
			// rather than aborting.
			fmt.Printf("4. leak @ %#x: failed on this boot: %v\n", secretVA, err)
			continue
		}
		fmt.Printf("4. leak @ %#x: accuracy %.2f%%, %.0f B/s sim\n", secretVA, leak.AccuracyPct, leak.BytesPerSecond)
		fmt.Printf("   leaked: % x\n", clip(leak.Leaked, 16))
		fmt.Printf("   truth:  % x\n", clip(secret, 16))
	}
	return nil
}

// clip returns at most the first n bytes of b, so a short leak result
// prints what it has instead of panicking.
func clip(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}

// allRunners maps every step name cmdAll issues to its implementation.
var allRunners = map[string]func([]string) error{
	"table1": cmdTable1, "fig6": cmdFig6, "fig7": cmdFig7,
	"covert": cmdCovert, "kaslr": cmdKASLR, "physmap": cmdPhysmap,
	"physaddr": cmdPhysAddr, "mds": cmdMDS, "mitigations": cmdMitigations,
	"sls": cmdSLS, "chain": cmdChain,
}

// allSteps builds the `phantom all` schedule. Every step receives the
// shared -seed (`phantom all -seed 42` must run the *whole* sweep at 42,
// not just table1), and the sweep-backed steps receive -jobs.
func allSteps(seed int64, runs, jobs int) [][]string {
	s := fmt.Sprint(seed)
	r := fmt.Sprint(runs)
	j := fmt.Sprint(jobs)
	return [][]string{
		{"table1", "-seed", s},
		{"fig6", "-seed", s, "-jobs", j},
		{"fig7", "-seed", s, "-jobs", j},
		{"covert", "-seed", s, "-bits", "1024", "-runs", "5", "-jobs", j},
		{"kaslr", "-seed", s, "-runs", r, "-jobs", j},
		{"physmap", "-seed", s, "-runs", r, "-jobs", j},
		{"physaddr", "-seed", s, "-runs", r, "-jobs", j},
		{"mds", "-seed", s, "-runs", "5", "-bytes", "1024", "-jobs", j},
		{"mitigations", "-seed", s},
		{"sls", "-seed", s},
		{"chain", "-seed", s},
	}
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed, forwarded to every step")
	runs := fs.Int("runs", 10, "reboots for the multi-run experiments")
	jobs := fs.Int("jobs", 0, "parallel workers per step (0 = GOMAXPROCS, 1 = sequential)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	for _, s := range allSteps(*seed, *runs, *jobs) {
		fmt.Printf("\n===== phantom %s =====\n", strings.Join(s, " "))
		if err := allRunners[s[0]](s[1:]); err != nil {
			return fmt.Errorf("%s: %w", s[0], err)
		}
	}
	return nil
}
