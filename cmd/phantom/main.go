// Command phantom regenerates the tables and figures of "Phantom:
// Exploiting Decoder-detectable Mispredictions" (MICRO 2023) on the
// simulated machines.
//
// Usage:
//
//	phantom <experiment> [flags]
//
// Experiments:
//
//	table1       training×victim misprediction matrix (Table 1)
//	fig6         speculative-decode page-offset sweep (Figure 6)
//	fig7         cross-privilege BTB function recovery (Figure 7)
//	covert       fetch and execute covert channels (Table 2)
//	kaslr        kernel image KASLR derandomization (Table 3)
//	physmap      physmap KASLR derandomization (Table 4)
//	physaddr     physical address of an attacker page (Table 5)
//	mds          MDS-gadget kernel memory leak (Section 7.4)
//	mitigations  SuppressBPOnNonBr / AutoIBRS / IBPB evaluation (Sections 6.3, 8)
//	sls          straight-line speculation cell (Table 1, footnote c)
//	chain        full Section 7 exploit chain on one boot
//	search       differential fuzzing of the speculation model (minimized findings)
//	all          everything above with default parameters
//
// Common flags: -arch, -seed, -runs, -jobs; see -h of each experiment.
// Multi-run experiments fan their (arch, reboot) jobs over a worker pool
// of -jobs workers (default GOMAXPROCS); every run derives its own seed,
// so the output is byte-identical whatever the pool size.
//
// Text output renders through the same engine as cmd/phantom-server
// (internal/service.Execute), so a served result is byte-identical to
// the CLI's stdout for the same request; -json paths emit the raw
// structures instead.
//
// Telemetry flags (before the experiment name):
//
//	phantom -metrics run.jsonl -progress -debug-addr localhost:6060 kaslr -runs 100
//
// -metrics writes a JSONL run log (one record per sweep job plus a final
// summary; schema in DESIGN.md), -progress renders a live stderr status
// line for the sweeps, and -debug-addr serves net/http/pprof and a
// /metrics snapshot while the experiment runs. Telemetry observes the
// harness only: experiment output stays byte-identical with it on, off,
// or sampled (-metrics-sample N).
//
// SIGINT/SIGTERM cancel the in-flight sweep jobs, flush the -metrics
// run log (the summary record is written even for an interrupted run),
// and exit 1 — an interrupted run leaves a readable log, not a
// truncated one.
//
// Exit codes: 0 on success, 1 on runtime errors, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"phantom"
	"phantom/internal/service"
	"phantom/internal/telemetry"
)

func main() {
	// NotifyContext is the interrupt path: the first SIGINT/SIGTERM
	// cancels the context (jobs unwind, telemetry flushes, exit 1); a
	// second signal hits the now-restored default handler and kills a
	// hung process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMainCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// errUsage marks command-line mistakes; realMain turns it into exit
// code 2 (runtime failures exit 1).
var errUsage = errors.New("usage error")

// parseFlags parses a subcommand flag set, folding parse failures into
// the usage-error exit path.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp // usage already printed; exits 0
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	return nil
}

// realMain runs the CLI and returns the process exit code (kept for
// tests that don't exercise cancellation or capture stdout).
func realMain(args []string, stderr io.Writer) int {
	return realMainCtx(context.Background(), args, os.Stdout, stderr)
}

// realMainCtx is the testable CLI entry point: ctx cancellation stands
// in for SIGINT/SIGTERM, stdout receives experiment output, stderr
// diagnostics. Whatever cancels the run, the telemetry teardown below
// still executes, so an interrupted -metrics run log always ends with
// its summary record.
func realMainCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	top := flag.NewFlagSet("phantom", flag.ContinueOnError)
	top.SetOutput(stderr)
	top.Usage = func() { usage(stderr) }
	metricsPath := top.String("metrics", "", "write a JSONL telemetry run log to this file")
	metricsSample := top.Int("metrics-sample", 1, "record every Nth sweep job in the run log and latency histogram")
	progress := top.Bool("progress", false, "render a live sweep progress line on stderr")
	debugAddr := top.String("debug-addr", "", "serve net/http/pprof and /metrics on this address while running")
	if err := top.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	rest := top.Args()
	if len(rest) == 0 {
		usage(stderr)
		return 2
	}
	cmd, cargs := rest[0], rest[1:]
	switch cmd {
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	}
	fn, ok := runners[cmd]
	if !ok {
		fmt.Fprintf(stderr, "phantom: unknown experiment %q\n\n", cmd)
		usage(stderr)
		return 2
	}

	// Telemetry session: enabled by any of the observability flags,
	// torn down (summary record, final progress line) before exit.
	tcfg := telemetry.Config{Label: cmd, SampleEvery: *metricsSample, Progress: nil}
	enable := false
	var logFile *os.File
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "phantom: -metrics: %v\n", err)
			return 1
		}
		logFile = f
		tcfg.RunLog = f
		enable = true
	}
	if *progress {
		tcfg.Progress = stderr
		enable = true
	}
	var debug *telemetry.DebugServer
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "phantom: %v\n", err)
			return 1
		}
		debug = srv
		fmt.Fprintf(stderr, "phantom: debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr())
		enable = true
	}
	if enable {
		telemetry.Enable(tcfg)
	}

	err := fn(ctx, stdout, cargs)

	code := 0
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
	case errors.Is(err, errUsage):
		fmt.Fprintf(stderr, "phantom %s: %v\n", cmd, err)
		code = 2
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		fmt.Fprintf(stderr, "phantom %s: interrupted\n", cmd)
		code = 1
	default:
		fmt.Fprintf(stderr, "phantom %s: %v\n", cmd, err)
		code = 1
	}
	if enable {
		if derr := telemetry.Disable(); derr != nil && code == 0 {
			fmt.Fprintf(stderr, "phantom: telemetry: %v\n", derr)
			code = 1
		}
	}
	if logFile != nil {
		if cerr := logFile.Close(); cerr != nil && code == 0 {
			fmt.Fprintf(stderr, "phantom: -metrics: %v\n", cerr)
			code = 1
		}
	}
	if debug != nil {
		debug.Close()
	}
	return code
}

// runners maps every experiment name to its implementation. Each
// runner writes experiment output to w only — diagnostics go to the
// process stderr — so the same functions back tests, the CLI, and
// (through service.Execute) the server.
var runners = map[string]func(context.Context, io.Writer, []string) error{
	"table1": cmdTable1, "fig6": cmdFig6, "fig7": cmdFig7,
	"covert": cmdCovert, "kaslr": cmdKASLR, "physmap": cmdPhysmap,
	"physaddr": cmdPhysAddr, "mds": cmdMDS, "mitigations": cmdMitigations,
	"sls": cmdSLS, "report": cmdReport, "chain": cmdChain, "all": cmdAll,
	"search": cmdSearch,
}

func usage(w io.Writer) {
	fmt.Fprint(w, `phantom — reproduce the MICRO'23 Phantom paper on a simulated machine

usage: phantom [-metrics file] [-progress] [-debug-addr addr] <experiment> [flags]

experiments:
  table1       training×victim misprediction matrix   (Table 1)
  fig6         speculative decode vs page offset      (Figure 6)
  fig7         BTB index-function recovery            (Figure 7)
  covert       fetch/execute covert channels          (Table 2)
  kaslr        kernel image KASLR break               (Table 3)
  physmap      physmap KASLR break                    (Table 4)
  physaddr     physical address derandomization       (Table 5)
  mds          MDS-gadget kernel memory leak          (Section 7.4)
  mitigations  mitigation evaluation                  (Sections 6.3, 8)
  sls          straight-line speculation cell         (Table 1, footnote c)
  report       full paper-vs-measured Markdown report
  chain        full Section 7 exploit chain
  search       differential fuzzing of the speculation model
  all          run everything with defaults

serving: the same experiments are available over HTTP from the
phantom-server binary (see EXPERIMENTS.md, "Serving mode").
`)
}

// emitJSON pretty-prints v to w.
func emitJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// parseArchs resolves a comma-separated -arch value.
func parseArchs(spec string) ([]phantom.Microarch, error) {
	switch spec {
	case "all":
		return phantom.AllMicroarchs(), nil
	case "amd":
		return phantom.AMDMicroarchs(), nil
	}
	var out []phantom.Microarch
	for _, s := range strings.Split(spec, ",") {
		a := phantom.Microarch(strings.TrimSpace(s))
		found := false
		for _, known := range phantom.AllMicroarchs() {
			if a == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown microarchitecture %q", s)
		}
		out = append(out, a)
	}
	return out, nil
}

// archNames converts a typed microarch list to the name form
// service.Request carries.
func archNames(archs []phantom.Microarch) []string {
	var out []string
	for _, a := range archs {
		out = append(out, string(a))
	}
	return out
}

func cmdTable1(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	arch := fs.String("arch", "all", "microarchitecture(s): name, comma list, amd, or all")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 6, "per-cell trials")
	noise := fs.Float64("noise", 0, "noise level (0 = lab conditions)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		for _, a := range archs {
			tb, err := phantom.RunTable1(a, phantom.Table1Options{Context: ctx, Seed: *seed, Trials: *trials, Noise: *noise})
			if err != nil {
				return err
			}
			if err := emitJSON(w, tb); err != nil {
				return err
			}
		}
		return nil
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "table1", Archs: archNames(archs), Seed: *seed, Trials: *trials, Noise: *noise,
	}, 0)
}

func cmdFig6(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	arch := fs.String("arch", "zen2,zen4", "microarchitecture(s); the paper plots zen2 and zen4")
	seed := fs.Int64("seed", 1, "random seed")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of an ASCII chart")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		series, err := phantom.RunFig6SweepCtx(ctx, archs, *seed, *jobs)
		if err != nil {
			return err
		}
		for _, s := range series {
			if err := emitJSON(w, s); err != nil {
				return err
			}
		}
		return nil
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "fig6", Archs: archNames(archs), Seed: *seed,
	}, *jobs)
}

func cmdFig7(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ContinueOnError)
	arch := fs.String("arch", "zen3", "microarchitecture (the paper reverse engineers zen3)")
	seed := fs.Int64("seed", 9, "random seed")
	samples := fs.Int("samples", 22, "independent collisions to gather")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		recovered, err := phantom.RunFig7Sweep(archs, phantom.Fig7Options{Context: ctx, Seed: *seed, Samples: *samples, Jobs: *jobs})
		if err != nil {
			return err
		}
		for _, f := range recovered {
			if err := emitJSON(w, f); err != nil {
				return err
			}
		}
		return nil
	}
	// Progress hint, not experiment output: stderr, so stdout stays
	// byte-identical to the served result.
	fmt.Fprintf(os.Stderr, "recovering BTB functions on %s (sampling may take ~10s)...\n",
		strings.Join(archNames(archs), ", "))
	return service.Execute(ctx, w, service.Request{
		Experiment: "fig7", Archs: archNames(archs), Seed: *seed, Samples: *samples,
	}, *jobs)
}

func cmdCovert(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("covert", flag.ContinueOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	bits := fs.Int("bits", 4096, "message bits per run")
	runs := fs.Int("runs", 10, "runs (median reported)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		opts := phantom.Table2Options{Context: ctx, Seed: *seed, Bits: *bits, Runs: *runs, Jobs: *jobs}
		rows, err := phantom.RunTable2Fetch(archs, opts)
		if err != nil {
			return err
		}
		execRows, err := phantom.RunTable2Execute(archs, opts)
		if err != nil {
			return err
		}
		return emitJSON(w, map[string]any{"fetch": rows, "execute": execRows})
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "covert", Archs: archNames(archs), Seed: *seed, Bits: *bits, Runs: *runs,
	}, *jobs)
}

func cmdKASLR(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("kaslr", flag.ContinueOnError)
	arch := fs.String("arch", "zen2,zen3,zen4", "microarchitecture(s); Table 3 uses zen2, zen3, zen4")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		rows, err := phantom.RunTable3(archs, phantom.DerandOptions{Context: ctx, Seed: *seed, Runs: *runs, Jobs: *jobs})
		if err != nil {
			return err
		}
		return emitJSON(w, rows)
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "kaslr", Archs: archNames(archs), Seed: *seed, Runs: *runs,
	}, *jobs)
}

func cmdPhysmap(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("physmap", flag.ContinueOnError)
	arch := fs.String("arch", "zen1,zen2", "microarchitecture(s); P2 works on zen1, zen2")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		rows, err := phantom.RunTable4(archs, phantom.DerandOptions{Context: ctx, Seed: *seed, Runs: *runs, Jobs: *jobs})
		if err != nil {
			return err
		}
		return emitJSON(w, rows)
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "physmap", Archs: archNames(archs), Seed: *seed, Runs: *runs,
	}, *jobs)
}

func cmdPhysAddr(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("physaddr", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *asJSON {
		rows, err := phantom.RunTable5(phantom.DerandOptions{Context: ctx, Seed: *seed, Runs: *runs, Jobs: *jobs})
		if err != nil {
			return err
		}
		return emitJSON(w, rows)
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "physaddr", Seed: *seed, Runs: *runs,
	}, *jobs)
}

func cmdMDS(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mds", flag.ContinueOnError)
	arch := fs.String("arch", "zen2", "microarchitecture (the paper's PoC runs on zen2)")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	bytes := fs.Int("bytes", 4096, "bytes to leak per run")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		for _, a := range archs {
			rep, err := phantom.RunMDSExperiment(a, phantom.MDSOptions{Context: ctx, Seed: *seed, Runs: *runs, Bytes: *bytes, Jobs: *jobs})
			if err != nil {
				return err
			}
			if err := emitJSON(w, rep); err != nil {
				return err
			}
		}
		return nil
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "mds", Archs: archNames(archs), Seed: *seed, Runs: *runs, Bytes: *bytes,
	}, *jobs)
}

func cmdMitigations(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mitigations", flag.ContinueOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	if *asJSON {
		for _, a := range archs {
			m, err := phantom.RunMitigations(a, *seed)
			if err != nil {
				return err
			}
			if err := emitJSON(w, m); err != nil {
				return err
			}
		}
		return nil
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "mitigations", Archs: archNames(archs), Seed: *seed,
	}, 0)
}

func cmdSLS(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sls", flag.ContinueOnError)
	arch := fs.String("arch", "all", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "sls", Archs: archNames(archs), Seed: *seed,
	}, 0)
}

func cmdReport(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "runs per derandomization experiment")
	bits := fs.Int("bits", 1024, "bits per covert-channel run")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "report", Seed: *seed, Runs: *runs, Bits: *bits,
	}, *jobs)
}

func cmdChain(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("chain", flag.ContinueOnError)
	arch := fs.String("arch", "zen2", "microarchitecture")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	return service.Execute(ctx, w, service.Request{
		Experiment: "chain", Archs: archNames(archs), Seed: *seed,
	}, 0)
}

// allRunners maps every step name cmdAll issues to its implementation.
var allRunners = map[string]func(context.Context, io.Writer, []string) error{
	"table1": cmdTable1, "fig6": cmdFig6, "fig7": cmdFig7,
	"covert": cmdCovert, "kaslr": cmdKASLR, "physmap": cmdPhysmap,
	"physaddr": cmdPhysAddr, "mds": cmdMDS, "mitigations": cmdMitigations,
	"sls": cmdSLS, "chain": cmdChain,
}

// allSteps builds the `phantom all` schedule. Every step receives the
// shared -seed (`phantom all -seed 42` must run the *whole* sweep at 42,
// not just table1), and the sweep-backed steps receive -jobs.
func allSteps(seed int64, runs, jobs int) [][]string {
	s := fmt.Sprint(seed)
	r := fmt.Sprint(runs)
	j := fmt.Sprint(jobs)
	return [][]string{
		{"table1", "-seed", s},
		{"fig6", "-seed", s, "-jobs", j},
		{"fig7", "-seed", s, "-jobs", j},
		{"covert", "-seed", s, "-bits", "1024", "-runs", "5", "-jobs", j},
		{"kaslr", "-seed", s, "-runs", r, "-jobs", j},
		{"physmap", "-seed", s, "-runs", r, "-jobs", j},
		{"physaddr", "-seed", s, "-runs", r, "-jobs", j},
		{"mds", "-seed", s, "-runs", "5", "-bytes", "1024", "-jobs", j},
		{"mitigations", "-seed", s},
		{"sls", "-seed", s},
		{"chain", "-seed", s},
	}
}

func cmdAll(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed, forwarded to every step")
	runs := fs.Int("runs", 10, "reboots for the multi-run experiments")
	jobs := fs.Int("jobs", 0, "parallel workers per step (0 = GOMAXPROCS, 1 = sequential)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	for _, s := range allSteps(*seed, *runs, *jobs) {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n===== phantom %s =====\n", strings.Join(s, " "))
		if err := allRunners[s[0]](ctx, w, s[1:]); err != nil {
			return fmt.Errorf("%s: %w", s[0], err)
		}
	}
	return nil
}
