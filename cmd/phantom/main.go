// Command phantom regenerates the tables and figures of "Phantom:
// Exploiting Decoder-detectable Mispredictions" (MICRO 2023) on the
// simulated machines.
//
// Usage:
//
//	phantom <experiment> [flags]
//
// Experiments:
//
//	table1       training×victim misprediction matrix (Table 1)
//	fig6         speculative-decode page-offset sweep (Figure 6)
//	fig7         cross-privilege BTB function recovery (Figure 7)
//	covert       fetch and execute covert channels (Table 2)
//	kaslr        kernel image KASLR derandomization (Table 3)
//	physmap      physmap KASLR derandomization (Table 4)
//	physaddr     physical address of an attacker page (Table 5)
//	mds          MDS-gadget kernel memory leak (Section 7.4)
//	mitigations  SuppressBPOnNonBr / AutoIBRS / IBPB evaluation (Sections 6.3, 8)
//	sls          straight-line speculation cell (Table 1, footnote c)
//	chain        full Section 7 exploit chain on one boot
//	all          everything above with default parameters
//
// Common flags: -arch, -seed, -runs; see -h of each experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"phantom"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "fig6":
		err = cmdFig6(args)
	case "fig7":
		err = cmdFig7(args)
	case "covert":
		err = cmdCovert(args)
	case "kaslr":
		err = cmdKASLR(args)
	case "physmap":
		err = cmdPhysmap(args)
	case "physaddr":
		err = cmdPhysAddr(args)
	case "mds":
		err = cmdMDS(args)
	case "mitigations":
		err = cmdMitigations(args)
	case "sls":
		err = cmdSLS(args)
	case "report":
		err = cmdReport(args)
	case "chain":
		err = cmdChain(args)
	case "all":
		err = cmdAll(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "phantom: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "phantom %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `phantom — reproduce the MICRO'23 Phantom paper on a simulated machine

usage: phantom <experiment> [flags]

experiments:
  table1       training×victim misprediction matrix   (Table 1)
  fig6         speculative decode vs page offset      (Figure 6)
  fig7         BTB index-function recovery            (Figure 7)
  covert       fetch/execute covert channels          (Table 2)
  kaslr        kernel image KASLR break               (Table 3)
  physmap      physmap KASLR break                    (Table 4)
  physaddr     physical address derandomization       (Table 5)
  mds          MDS-gadget kernel memory leak          (Section 7.4)
  mitigations  mitigation evaluation                  (Sections 6.3, 8)
  sls          straight-line speculation cell         (Table 1, footnote c)
  report       full paper-vs-measured Markdown report
  chain        full Section 7 exploit chain
  all          run everything with defaults
`)
}

// emitJSON pretty-prints v to stdout.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// parseArchs resolves a comma-separated -arch value.
func parseArchs(spec string) ([]phantom.Microarch, error) {
	switch spec {
	case "all":
		return phantom.AllMicroarchs(), nil
	case "amd":
		return phantom.AMDMicroarchs(), nil
	}
	var out []phantom.Microarch
	for _, s := range strings.Split(spec, ",") {
		a := phantom.Microarch(strings.TrimSpace(s))
		found := false
		for _, known := range phantom.AllMicroarchs() {
			if a == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown microarchitecture %q", s)
		}
		out = append(out, a)
	}
	return out, nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	arch := fs.String("arch", "all", "microarchitecture(s): name, comma list, amd, or all")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 6, "per-cell trials")
	noise := fs.Float64("noise", 0, "noise level (0 = lab conditions)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		tb, err := phantom.RunTable1(a, phantom.Table1Options{Seed: *seed, Trials: *trials, Noise: *noise})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(tb); err != nil {
				return err
			}
			continue
		}
		fmt.Println(tb)
	}
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	arch := fs.String("arch", "zen2,zen4", "microarchitecture(s); the paper plots zen2 and zen4")
	seed := fs.Int64("seed", 1, "random seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of an ASCII chart")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		s, err := phantom.RunFig6(a, *seed)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(s); err != nil {
				return err
			}
			continue
		}
		fmt.Println(s)
	}
	return nil
}

func cmdFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	arch := fs.String("arch", "zen3", "microarchitecture (the paper reverse engineers zen3)")
	seed := fs.Int64("seed", 9, "random seed")
	samples := fs.Int("samples", 22, "independent collisions to gather")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		if !*asJSON {
			fmt.Printf("recovering BTB functions on %s (sampling may take ~10s)...\n", a)
		}
		f, err := phantom.RunFig7(a, phantom.Fig7Options{Seed: *seed, Samples: *samples})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(f); err != nil {
				return err
			}
			continue
		}
		fmt.Println(f)
	}
	return nil
}

func cmdCovert(args []string) error {
	fs := flag.NewFlagSet("covert", flag.ExitOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	bits := fs.Int("bits", 4096, "message bits per run")
	runs := fs.Int("runs", 10, "runs (median reported)")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	opts := phantom.Table2Options{Seed: *seed, Bits: *bits, Runs: *runs}
	rows, err := phantom.RunTable2Fetch(archs, opts)
	if err != nil {
		return err
	}
	execRows, err := phantom.RunTable2Execute(archs, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(map[string]any{"fetch": rows, "execute": execRows})
	}
	fmt.Print(phantom.FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows))
	fmt.Println()
	fmt.Print(phantom.FormatTable2("Table 2 (bottom) — execute covert channel (P2)", execRows))
	return nil
}

func cmdKASLR(args []string) error {
	fs := flag.NewFlagSet("kaslr", flag.ExitOnError)
	arch := fs.String("arch", "zen2,zen3,zen4", "microarchitecture(s); Table 3 uses zen2, zen3, zen4")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	rows, err := phantom.RunTable3(archs, phantom.DerandOptions{Seed: *seed, Runs: *runs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 3 — kernel image KASLR via P1 (%d runs)", *runs), rows))
	return nil
}

func cmdPhysmap(args []string) error {
	fs := flag.NewFlagSet("physmap", flag.ExitOnError)
	arch := fs.String("arch", "zen1,zen2", "microarchitecture(s); P2 works on zen1, zen2")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	rows, err := phantom.RunTable4(archs, phantom.DerandOptions{Seed: *seed, Runs: *runs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 4 — physmap KASLR via P2 (%d runs)", *runs), rows))
	return nil
}

func cmdPhysAddr(args []string) error {
	fs := flag.NewFlagSet("physaddr", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 20, "reboots (the paper uses 100)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	fs.Parse(args)
	rows, err := phantom.RunTable5(phantom.DerandOptions{Seed: *seed, Runs: *runs})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(rows)
	}
	fmt.Print(phantom.FormatDerand(
		fmt.Sprintf("Table 5 — physical address of a user page (%d runs)", *runs), rows))
	return nil
}

func cmdMDS(args []string) error {
	fs := flag.NewFlagSet("mds", flag.ExitOnError)
	arch := fs.String("arch", "zen2", "microarchitecture (the paper's PoC runs on zen2)")
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots")
	bytes := fs.Int("bytes", 4096, "bytes to leak per run")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		rep, err := phantom.RunMDSExperiment(a, phantom.MDSOptions{Seed: *seed, Runs: *runs, Bytes: *bytes})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
			continue
		}
		fmt.Println(rep)
	}
	return nil
}

func cmdMitigations(args []string) error {
	fs := flag.NewFlagSet("mitigations", flag.ExitOnError)
	arch := fs.String("arch", "amd", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		m, err := phantom.RunMitigations(a, *seed)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(m); err != nil {
				return err
			}
			continue
		}
		fmt.Println(m)
	}
	return nil
}

func cmdSLS(args []string) error {
	fs := flag.NewFlagSet("sls", flag.ExitOnError)
	arch := fs.String("arch", "all", "microarchitecture(s)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	fmt.Println("Straight-line speculation past an unpredicted return (Spectre-SLS,")
	fmt.Println("Table 1 footnote c): the sequential bytes after a ret execute")
	fmt.Println("transiently on AMD parts; Intel frontends stall instead.")
	fmt.Println()
	for _, a := range archs {
		tb, err := phantom.RunTable1(a, phantom.Table1Options{Seed: *seed, Trials: 4})
		if err != nil {
			return err
		}
		var reach phantom.StageReach
		for _, row := range tb.Cells {
			for _, c := range row {
				if c.Training == "non-branch" && c.Victim == "ret" {
					reach = c.Reach
				}
			}
		}
		fmt.Printf("  %-26s %v\n", a.ModelName(), reach)
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "runs per derandomization experiment")
	bits := fs.Int("bits", 1024, "bits per covert-channel run")
	fs.Parse(args)
	return phantom.GenerateReport(os.Stdout, phantom.ReportOptions{
		Seed: *seed, Runs: *runs, Bits: *bits,
	})
}

func cmdChain(args []string) error {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	arch := fs.String("arch", "zen2", "microarchitecture")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	archs, err := parseArchs(*arch)
	if err != nil {
		return err
	}
	for _, a := range archs {
		sys, err := phantom.NewSystem(a, phantom.SystemConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("=== Full exploit chain on %s (seed %d) ===\n", a.ModelName(), *seed)
		img, err := sys.BreakImageKASLR()
		if err != nil {
			return err
		}
		fmt.Printf("1. kernel image:  %#x  correct=%v  (%.4fs sim)\n", img.Guess, img.Correct, img.Seconds)
		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			return err
		}
		fmt.Printf("2. physmap:       %#x  correct=%v  (%.4fs sim)\n", pm.Guess, pm.Correct, pm.Seconds)
		pa, err := sys.FindPhysAddr(img.Guess, pm.Guess)
		if err != nil {
			return err
		}
		fmt.Printf("3. page phys:     %#x  correct=%v  (%.4fs sim)\n", pa.Guess, pa.Correct, pa.Seconds)
		secretVA, secret := sys.SecretAddr()
		leak, err := sys.LeakKernelMemory(secretVA, 64)
		if err != nil {
			return err
		}
		fmt.Printf("4. leak @ %#x: accuracy %.2f%%, %.0f B/s sim\n", secretVA, leak.AccuracyPct, leak.BytesPerSecond)
		fmt.Printf("   leaked: % x\n", leak.Leaked[:16])
		fmt.Printf("   truth:  % x\n", secret[:16])
	}
	return nil
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	runs := fs.Int("runs", 10, "reboots for the multi-run experiments")
	fs.Parse(args)
	steps := [][]string{
		{"table1", "-seed", fmt.Sprint(*seed)},
		{"fig6"},
		{"fig7"},
		{"covert", "-bits", "1024", "-runs", "5"},
		{"kaslr", "-runs", fmt.Sprint(*runs)},
		{"physmap", "-runs", fmt.Sprint(*runs)},
		{"physaddr", "-runs", fmt.Sprint(*runs)},
		{"mds", "-runs", "5", "-bytes", "1024"},
		{"mitigations"},
		{"sls"},
		{"chain"},
	}
	runners := map[string]func([]string) error{
		"table1": cmdTable1, "fig6": cmdFig6, "fig7": cmdFig7,
		"covert": cmdCovert, "kaslr": cmdKASLR, "physmap": cmdPhysmap,
		"physaddr": cmdPhysAddr, "mds": cmdMDS, "mitigations": cmdMitigations,
		"sls": cmdSLS, "chain": cmdChain,
	}
	for _, s := range steps {
		fmt.Printf("\n===== phantom %s =====\n", strings.Join(s, " "))
		if err := runners[s[0]](s[1:]); err != nil {
			return fmt.Errorf("%s: %w", s[0], err)
		}
	}
	return nil
}
