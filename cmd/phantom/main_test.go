package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"phantom"
)

// TestExitCodes pins the CLI convention shared by all three binaries:
// 0 success, 1 runtime error, 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown experiment", []string{"frobnicate"}, 2},
		{"bad top-level flag", []string{"-definitely-not-a-flag", "table1"}, 2},
		{"bad subcommand flag", []string{"table1", "-definitely-not-a-flag"}, 2},
		{"help", []string{"help"}, 0},
		{"help flag", []string{"-h"}, 0},
		{"runtime error", []string{"mitigations", "-arch", "i486"}, 1},
		{"bad metrics path", []string{"-metrics", filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl"), "table1"}, 1},
	}
	for _, c := range cases {
		if got := realMain(c.args, io.Discard); got != c.want {
			t.Errorf("%s: realMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}

// TestMetricsRunLog runs a small experiment with -metrics and checks the
// produced run log is valid JSONL ending in a summary record.
func TestMetricsRunLog(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke run")
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	args := []string{"-metrics", path, "-metrics-sample", "2",
		"kaslr", "-arch", "zen2", "-runs", "2", "-jobs", "2"}

	// The experiment prints its table to stdout; silence it for the test.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	code := realMain(args, io.Discard)
	os.Stdout = old
	devnull.Close()
	if code != 0 {
		t.Fatalf("realMain(%v) = %d", args, code)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var types []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := rec["type"].(string)
		if typ == "" {
			t.Fatalf("record without type: %q", sc.Text())
		}
		types = append(types, typ)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 {
		t.Fatal("empty run log")
	}
	if got := types[len(types)-1]; got != "summary" {
		t.Errorf("last record type = %q, want summary", got)
	}
	seen := map[string]bool{}
	for _, typ := range types {
		seen[typ] = true
	}
	for _, want := range []string{"sweep_start", "job", "sweep_end", "summary"} {
		if !seen[want] {
			t.Errorf("run log has no %q record (types: %v)", want, types)
		}
	}
}

func TestAllStepsForwardSeedEverywhere(t *testing.T) {
	// Regression: `phantom all -seed 42` used to forward -seed only to
	// table1, silently running the other ten steps at the default seed.
	steps := allSteps(42, 7, 3)
	if len(steps) != len(allRunners) {
		t.Fatalf("%d steps vs %d runners", len(steps), len(allRunners))
	}
	for _, s := range steps {
		if _, ok := allRunners[s[0]]; !ok {
			t.Errorf("step %q has no runner", s[0])
		}
		seeded := false
		for i, a := range s[:len(s)-1] {
			if a == "-seed" && s[i+1] == "42" {
				seeded = true
			}
		}
		if !seeded {
			t.Errorf("step %v does not forward -seed 42", s)
		}
	}
}

func TestAllStepsForwardJobsToSweeps(t *testing.T) {
	for _, s := range allSteps(1, 5, 4) {
		switch s[0] {
		case "fig6", "fig7", "covert", "kaslr", "physmap", "physaddr", "mds":
			forwarded := false
			for i, a := range s[:len(s)-1] {
				if a == "-jobs" && s[i+1] == "4" {
					forwarded = true
				}
			}
			if !forwarded {
				t.Errorf("sweep step %v does not forward -jobs 4", s)
			}
		}
	}
}

func TestParseArchs(t *testing.T) {
	all, err := parseArchs("all")
	if err != nil || len(all) != 8 {
		t.Fatalf("all: %v, %v", all, err)
	}
	amd, err := parseArchs("amd")
	if err != nil || len(amd) != 4 {
		t.Fatalf("amd: %v, %v", amd, err)
	}
	list, err := parseArchs("zen2, zen4")
	if err != nil || len(list) != 2 || list[0] != phantom.Zen2 || list[1] != phantom.Zen4 {
		t.Fatalf("list: %v, %v", list, err)
	}
	if _, err := parseArchs("zen5"); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if _, err := parseArchs("zen2,badarch"); err == nil {
		t.Fatal("partially bad list accepted")
	}
}

func TestExperimentsSmallRuns(t *testing.T) {
	// Every subcommand must complete with tiny parameters (smoke-level
	// CLI coverage; correctness is asserted by the package tests).
	if testing.Short() {
		t.Skip("CLI smoke runs")
	}
	ctx := context.Background()
	cases := [][]string{
		{"-arch", "zen2", "-trials", "2"},
	}
	for _, args := range cases {
		if err := cmdTable1(ctx, io.Discard, args); err != nil {
			t.Errorf("table1 %v: %v", args, err)
		}
	}
	if err := cmdCovert(ctx, io.Discard, []string{"-arch", "zen2", "-bits", "64", "-runs", "1"}); err != nil {
		t.Errorf("covert: %v", err)
	}
	if err := cmdKASLR(ctx, io.Discard, []string{"-arch", "zen2", "-runs", "2", "-jobs", "2"}); err != nil {
		t.Errorf("kaslr: %v", err)
	}
	if err := cmdMDS(ctx, io.Discard, []string{"-arch", "zen2", "-runs", "1", "-bytes", "64"}); err != nil {
		t.Errorf("mds: %v", err)
	}
	if err := cmdChain(ctx, io.Discard, []string{"-arch", "zen2"}); err != nil {
		t.Errorf("chain: %v", err)
	}
}

// TestInterruptFlushesRunLog pins the interrupt contract: when the run
// context is cancelled mid-experiment (the SIGINT/SIGTERM path in
// main), the CLI exits 1 *and* the -metrics run log is still flushed
// and summary-terminated. Before runners took a context, an interrupt
// killed the process with whatever half-written log happened to be on
// disk.
func TestInterruptFlushesRunLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // "signal" arrives before the first sweep job
	args := []string{"-metrics", path, "kaslr", "-arch", "zen2", "-runs", "50"}
	if code := realMainCtx(ctx, args, io.Discard, io.Discard); code != 1 {
		t.Fatalf("realMainCtx(cancelled, %v) = %d, want 1", args, code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("run log not written: %v", err)
	}
	var last map[string]any
	lines := 0
	for _, line := range splitLines(data) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		last = rec
		lines++
	}
	if lines == 0 {
		t.Fatal("interrupted run left an empty run log")
	}
	if typ, _ := last["type"].(string); typ != "summary" {
		t.Errorf("last record type = %q, want summary (interrupted log must still be summary-terminated)", typ)
	}
}

// splitLines splits JSONL bytes into non-empty lines.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
