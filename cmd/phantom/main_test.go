package main

import (
	"testing"

	"phantom"
)

func TestParseArchs(t *testing.T) {
	all, err := parseArchs("all")
	if err != nil || len(all) != 8 {
		t.Fatalf("all: %v, %v", all, err)
	}
	amd, err := parseArchs("amd")
	if err != nil || len(amd) != 4 {
		t.Fatalf("amd: %v, %v", amd, err)
	}
	list, err := parseArchs("zen2, zen4")
	if err != nil || len(list) != 2 || list[0] != phantom.Zen2 || list[1] != phantom.Zen4 {
		t.Fatalf("list: %v, %v", list, err)
	}
	if _, err := parseArchs("zen5"); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if _, err := parseArchs("zen2,badarch"); err == nil {
		t.Fatal("partially bad list accepted")
	}
}

func TestExperimentsSmallRuns(t *testing.T) {
	// Every subcommand must complete with tiny parameters (smoke-level
	// CLI coverage; correctness is asserted by the package tests).
	if testing.Short() {
		t.Skip("CLI smoke runs")
	}
	cases := [][]string{
		{"-arch", "zen2", "-trials", "2"},
	}
	for _, args := range cases {
		if err := cmdTable1(args); err != nil {
			t.Errorf("table1 %v: %v", args, err)
		}
	}
	if err := cmdCovert([]string{"-arch", "zen2", "-bits", "64", "-runs", "1"}); err != nil {
		t.Errorf("covert: %v", err)
	}
	if err := cmdKASLR([]string{"-arch", "zen2", "-runs", "2"}); err != nil {
		t.Errorf("kaslr: %v", err)
	}
	if err := cmdMDS([]string{"-arch", "zen2", "-runs", "1", "-bytes", "64"}); err != nil {
		t.Errorf("mds: %v", err)
	}
	if err := cmdChain([]string{"-arch", "zen2"}); err != nil {
		t.Errorf("chain: %v", err)
	}
}
