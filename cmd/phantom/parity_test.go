package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"phantom/internal/service"
)

// TestServedOutputMatchesCLI pins the acceptance contract of the
// serving subsystem: for the same request, the HTTP result's "output"
// field is byte-identical to what the phantom CLI prints — cold, and
// again from the cache. Both front ends render through
// service.Execute, so this test guards the *wiring* (flag → Request
// mapping, normalization, cache copy-out), not two implementations.
func TestServedOutputMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv := service.NewServer(service.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		cli     func(ctx context.Context, w io.Writer, args []string) error
		args    []string
		request string
	}{
		{
			"table1", cmdTable1,
			[]string{"-arch", "zen2", "-trials", "2"},
			`{"experiment":"table1","archs":["zen2"],"trials":2}`,
		},
		{
			"chain", cmdChain,
			[]string{"-arch", "zen2", "-seed", "3"},
			`{"experiment":"chain","archs":["zen2"],"seed":3}`,
		},
		{
			"sls (explicit vs defaulted request)", cmdSLS,
			nil,
			`{"experiment":"sls","archs":["all"],"seed":1}`,
		},
	}
	for _, c := range cases {
		var cli bytes.Buffer
		if err := c.cli(context.Background(), &cli, c.args); err != nil {
			t.Fatalf("%s: CLI: %v", c.name, err)
		}
		for round, wantCached := range []bool{false, true} {
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(c.request))
			if err != nil {
				t.Fatalf("%s: POST: %v", c.name, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", c.name, resp.StatusCode, body)
			}
			var res service.Result
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if res.Output != cli.String() {
				t.Errorf("%s round %d: served output differs from CLI stdout\nserved: %q\ncli:    %q",
					c.name, round, res.Output, cli.String())
			}
			if res.Cached != wantCached {
				t.Errorf("%s round %d: cached = %v, want %v", c.name, round, res.Cached, wantCached)
			}
		}
	}
}
