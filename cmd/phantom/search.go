package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"phantom/internal/search"
)

// cmdSearch runs the automated attack-variant search: -budget random
// programs are generated from -seed, each executed mispredict-on vs
// mispredict-off, divergences classified, and the first program of
// every distinct signature delta-debugged to a minimal reproducer.
// Stdout is byte-identical at any -jobs value; -fixtures lands the
// minimized findings as replayable JSON fixtures (diagnostics about
// the written files go to stderr, so stdout stays pinned).
func cmdSearch(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	arch := fs.String("arch", "zen2", "microarchitecture to search")
	seed := fs.Int64("seed", 1, "random seed")
	budget := fs.Int("budget", 5000, "programs to generate and differentially execute")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	fixtures := fs.String("fixtures", "", "write minimized findings as fixtures under this directory")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	res, err := search.Run(ctx, search.Options{
		Arch: *arch, Seed: *seed, Budget: *budget, Jobs: *jobs,
	})
	if err != nil {
		return err
	}
	if *fixtures != "" {
		for i := range res.Findings {
			f := &res.Findings[i]
			// Re-measure the minimized program for the per-leg cycle
			// counts the fixture pins (Run already verified it diffs).
			d, err := search.RunDiff(f.Program)
			if err != nil {
				return err
			}
			path, err := search.WriteFixture(*fixtures, search.NewFixture(f, d))
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "phantom search: wrote %s\n", path)
		}
	}
	if *asJSON {
		return emitJSON(w, res)
	}
	return res.Render(w)
}
