// Command phantom-vet runs the repo's invariant analyzers — the
// determinism, parity, and no-perturbation rules the runtime parity
// tests pin — over Go packages and reports violations at their source
// positions. It is the fifth phantom binary and the static half of
// `make check`: the parity tests prove the invariants held on this
// run, phantom-vet proves nobody wrote code that could break them on
// another.
//
// Usage:
//
//	phantom-vet [-run names] [-list] packages...
//
// Packages use `go list` pattern syntax (./..., phantom/internal/...,
// or plain directories). -run restricts the suite to a comma-separated
// subset of analyzers; -list describes every analyzer and exits.
//
// Exit codes follow the convention shared by every phantom binary:
// 0 on success (no findings), 1 on runtime errors or findings, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"phantom/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the tool and returns the process exit code. Findings
// go to stdout (they are the program's output); errors go to stderr.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phantom-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	run := fs.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	version := fs.Bool("V", false, "print version and exit (go vet -vettool handshake compatibility)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: phantom-vet [-run names] [-list] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		// The standalone driver is the supported mode (the build
		// environment vendors no x/tools unitchecker); the flag exists
		// so `phantom-vet -V=full` identifies itself instead of
		// misparsing.
		fmt.Fprintln(stdout, "phantom-vet version dev")
		return 0
	}
	suite, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintf(stderr, "phantom-vet: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "phantom-vet: no packages named (try ./...)")
		fs.Usage()
		return 2
	}
	pkgs, err := analysis.Load(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "phantom-vet: %v\n", err)
		return 1
	}
	diags := analysis.Run(suite, pkgs)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "phantom-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -run list against the suite. An empty
// spec selects everything; an unknown name is a usage error, because a
// typo that silently runs zero analyzers would green-light anything.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analysis.Suite(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := analysis.ByName(name)
		if a == nil {
			known := make([]string, 0, len(analysis.Suite()))
			for _, s := range analysis.Suite() {
				known = append(known, s.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}
