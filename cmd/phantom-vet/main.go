// Command phantom-vet runs the repo's invariant analyzers — the
// determinism, parity, and no-perturbation rules the runtime parity
// tests pin — over Go packages and reports violations at their source
// positions. It is the fifth phantom binary and the static half of
// `make check`: the parity tests prove the invariants held on this
// run, phantom-vet proves nobody wrote code that could break them on
// another.
//
// Usage:
//
//	phantom-vet [-run names] [-list] [-v] [-cache-dir dir] [-fixture] packages...
//
// Packages use `go list` pattern syntax (./..., phantom/internal/...,
// or plain directories). -run restricts the suite to a comma-separated
// subset of analyzers; -list describes every analyzer and exits.
// -fixture treats each argument as a single fixture package directory
// and runs the raw rules on it, ignoring Applies scopes — the CLI face
// of the in-tree fixture harness, used by CI to pin seeded violations.
//
// -cache-dir enables the driver's on-disk result cache: packages whose
// content (and whole import chain, and hot-set slice) is unchanged
// since the last run are restored without being type-checked or
// analyzed. The cache applies only to full-suite runs — a -run subset
// always analyzes from scratch, so a cached full-suite result can
// never be confused with a partial one. -v reports per-package cache
// hits and per-analyzer wall time on stderr.
//
// Exit codes follow the convention shared by every phantom binary:
// 0 on success (no findings), 1 on runtime errors or findings, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"phantom/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the tool and returns the process exit code. Findings
// go to stdout (they are the program's output); errors go to stderr.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phantom-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	run := fs.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	fixture := fs.Bool("fixture", false, "treat arguments as fixture package directories and run the raw rules (ignores Applies scopes and the cache)")
	verbose := fs.Bool("v", false, "report per-package timing and cache hits on stderr")
	cacheDir := fs.String("cache-dir", "", "directory for the on-disk result cache (default: no cache)")
	version := fs.Bool("V", false, "print version and exit (go vet -vettool handshake compatibility)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: phantom-vet [-run names] [-list] [-v] [-cache-dir dir] [-fixture] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		// The standalone driver is the supported mode (the build
		// environment vendors no x/tools unitchecker); the flag exists
		// so `phantom-vet -V=full` identifies itself instead of
		// misparsing.
		fmt.Fprintln(stdout, "phantom-vet version dev")
		return 0
	}
	suite, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintf(stderr, "phantom-vet: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "phantom-vet: no packages named (try ./...)")
		fs.Usage()
		return 2
	}
	if *fixture {
		// Fixture mode exercises the raw rules the way the test harness
		// does: Applies scopes are ignored (testdata package paths never
		// fall inside the real tree's scopes) and the cache stays out of
		// the picture. CI uses this to pin each analyzer's seeded bad
		// fixture to exit code 1.
		return runFixtures(suite, fs.Args(), stdout, stderr)
	}
	opts := analysis.DriverOptions{CacheDir: *cacheDir}
	if *run != "" && *cacheDir != "" {
		// A -run subset must not populate (or consume) the cache: the
		// stored diagnostics would reflect a partial suite.
		opts.CacheDir = ""
		fmt.Fprintln(stderr, "phantom-vet: -cache-dir ignored with -run (cache stores full-suite results only)")
	}
	diags, stats, err := analysis.RunDriver(suite, fs.Args(), opts)
	if err != nil {
		fmt.Fprintf(stderr, "phantom-vet: %v\n", err)
		return 1
	}
	if *verbose {
		printStats(stderr, stats)
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "phantom-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runFixtures analyzes each directory as a single fixture package with
// every selected analyzer's raw rule, exactly as the in-tree fixture
// tests do. Diagnostics print to stdout; the exit code follows the
// usual convention (0 clean, 1 findings or errors).
func runFixtures(suite []*analysis.Analyzer, dirs []string, stdout, stderr io.Writer) int {
	var total int
	for _, dir := range dirs {
		for _, a := range suite {
			diags, _, err := analysis.AnalyzeDir(a, dir)
			if err != nil {
				fmt.Fprintf(stderr, "phantom-vet: %s: %v\n", dir, err)
				return 1
			}
			for _, d := range diags {
				fmt.Fprintln(stdout, d)
			}
			total += len(diags)
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "phantom-vet: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// printStats renders the -v report: cache effectiveness, then the
// per-package and per-analyzer wall-time breakdowns.
func printStats(w io.Writer, stats *analysis.DriverStats) {
	fmt.Fprintf(w, "phantom-vet: %d package(s), %d cache hit(s), %d analyzed, wall %v\n",
		stats.Packages, stats.CacheHits, stats.CacheMisses, stats.Wall.Round(time.Millisecond))
	for _, ps := range stats.PerPackage {
		if ps.CacheHit {
			fmt.Fprintf(w, "  %-40s cache hit\n", ps.Path)
			continue
		}
		fmt.Fprintf(w, "  %-40s load %v, analyze %v\n", ps.Path,
			ps.Load.Round(time.Millisecond), ps.Analyze.Round(time.Millisecond))
	}
	for _, as := range stats.PerAnalyzer {
		fmt.Fprintf(w, "  analyzer %-12s %v\n", as.Name, as.Wall.Round(time.Millisecond))
	}
}

// selectAnalyzers resolves a -run list against the suite. An empty
// spec selects everything; an unknown name is a usage error, because a
// typo that silently runs zero analyzers would green-light anything.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analysis.Suite(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := analysis.ByName(name)
		if a == nil {
			known := make([]string, 0, len(analysis.Suite()))
			for _, s := range analysis.Suite() {
				known = append(known, s.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}
