package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkVetWholeRepo measures the driver's cache where it matters:
// a full-suite run over the entire module. cold runs against an empty
// cache directory every iteration (parse + type-check + analyze all
// packages); warm fills the cache once and then re-runs against it
// (hash files, restore every package, rebuild the call graph from
// cached summaries). The warm/cold ratio is the number `make
// phantom-vet` buys on an unchanged tree; `make bench-vet` archives
// both as a dated BENCH_*_vet.json.
func BenchmarkVetWholeRepo(b *testing.B) {
	vet := func(b *testing.B, cacheDir string) {
		b.Helper()
		if code := realMain([]string{"-cache-dir", cacheDir, "phantom/..."}, io.Discard, io.Discard); code != 0 {
			b.Fatalf("phantom-vet exited %d; the tree must be clean to benchmark it", code)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cacheDir := filepath.Join(b.TempDir(), "vetcache")
			b.StartTimer()
			vet(b, cacheDir)
			b.StopTimer()
			if err := os.RemoveAll(cacheDir); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		cacheDir := filepath.Join(b.TempDir(), "vetcache")
		vet(b, cacheDir) // fill
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vet(b, cacheDir)
		}
	})
}
