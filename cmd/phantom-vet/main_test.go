package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI convention shared by all five binaries:
// 0 success, 1 runtime error (including findings), 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list analyzers", []string{"-list"}, 0},
		{"version handshake", []string{"-V"}, 0},
		{"clean package", []string{"phantom/internal/gf2"}, 0},
		{"seeded violation", []string{"../../internal/analysis/testdata/src/maporder/bad"}, 1},
		{"unknown package", []string{"phantom/internal/not-a-package"}, 1},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"no packages", nil, 2},
		{"unknown analyzer", []string{"-run", "nope", "./..."}, 2},
		{"empty analyzer list", []string{"-run", ",", "./..."}, 2},
	}
	for _, c := range cases {
		if got := realMain(c.args, io.Discard, io.Discard); got != c.want {
			t.Errorf("%s: realMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}

// TestSeededViolationOutput drives the gate end to end on a fixture
// with known violations: findings on stdout with positions and
// analyzer names, a count on stderr, exit 1. This is the behaviour
// `make check` relies on to fail the build.
func TestSeededViolationOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"../../internal/analysis/testdata/src/maporder/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"bad.go:", "(maporder)", "random order"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings count: %s", stderr.String())
	}
}

// TestRunSubset checks -run restricts the suite: the maporder fixture
// also violates noperturb (it prints inside the loop), but a
// -run=faultalloc pass must stay silent on it.
func TestRunSubset(t *testing.T) {
	var stdout bytes.Buffer
	code := realMain([]string{"-run", "faultalloc", "../../internal/analysis/testdata/src/maporder/bad"}, &stdout, io.Discard)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings: %s", stdout.String())
	}

	stdout.Reset()
	code = realMain([]string{"-run", "noperturb,maporder", "../../internal/analysis/testdata/src/maporder/bad"}, &stdout, io.Discard)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "(noperturb)") || !strings.Contains(stdout.String(), "(maporder)") {
		t.Errorf("expected both analyzers in output:\n%s", stdout.String())
	}
}

// TestListDescribesEveryAnalyzer keeps -list in sync with the suite.
func TestListDescribesEveryAnalyzer(t *testing.T) {
	var stdout bytes.Buffer
	if code := realMain([]string{"-list"}, &stdout, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maporder", "noperturb", "ctxflow", "faultalloc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}
