package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI convention shared by all five binaries:
// 0 success, 1 runtime error (including findings), 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list analyzers", []string{"-list"}, 0},
		{"version handshake", []string{"-V"}, 0},
		{"clean package", []string{"phantom/internal/gf2"}, 0},
		{"seeded violation", []string{"../../internal/analysis/testdata/src/maporder/bad"}, 1},
		{"unknown package", []string{"phantom/internal/not-a-package"}, 1},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"no packages", nil, 2},
		{"unknown analyzer", []string{"-run", "nope", "./..."}, 2},
		{"empty analyzer list", []string{"-run", ",", "./..."}, 2},
	}
	for _, c := range cases {
		if got := realMain(c.args, io.Discard, io.Discard); got != c.want {
			t.Errorf("%s: realMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}

// TestSeededViolationOutput drives the gate end to end on a fixture
// with known violations: findings on stdout with positions and
// analyzer names, a count on stderr, exit 1. This is the behaviour
// `make check` relies on to fail the build.
func TestSeededViolationOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"../../internal/analysis/testdata/src/maporder/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"bad.go:", "(maporder)", "random order"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings count: %s", stderr.String())
	}
}

// TestRunSubset checks -run restricts the suite: the maporder fixture
// also violates noperturb (it prints inside the loop), but a
// -run=faultalloc pass must stay silent on it.
func TestRunSubset(t *testing.T) {
	var stdout bytes.Buffer
	code := realMain([]string{"-run", "faultalloc", "../../internal/analysis/testdata/src/maporder/bad"}, &stdout, io.Discard)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings: %s", stdout.String())
	}

	stdout.Reset()
	code = realMain([]string{"-run", "noperturb,maporder", "../../internal/analysis/testdata/src/maporder/bad"}, &stdout, io.Discard)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "(noperturb)") || !strings.Contains(stdout.String(), "(maporder)") {
		t.Errorf("expected both analyzers in output:\n%s", stdout.String())
	}
}

// TestVerboseCacheRoundTrip drives -v and -cache-dir together on a
// stdlib-only package: the first run analyzes and reports timing, the
// second is a cache hit — the behaviour `make phantom-vet` relies on
// for warm-run speed.
func TestVerboseCacheRoundTrip(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	var stderr bytes.Buffer
	if code := realMain([]string{"-v", "-cache-dir", cacheDir, "phantom/internal/gf2"}, io.Discard, &stderr); code != 0 {
		t.Fatalf("cold run: exit = %d\n%s", code, stderr.String())
	}
	cold := stderr.String()
	for _, want := range []string{"1 package(s), 0 cache hit(s), 1 analyzed", "load ", "analyze ", "analyzer "} {
		if !strings.Contains(cold, want) {
			t.Errorf("cold -v report missing %q:\n%s", want, cold)
		}
	}
	stderr.Reset()
	if code := realMain([]string{"-v", "-cache-dir", cacheDir, "phantom/internal/gf2"}, io.Discard, &stderr); code != 0 {
		t.Fatalf("warm run: exit = %d\n%s", code, stderr.String())
	}
	warm := stderr.String()
	for _, want := range []string{"1 cache hit(s), 0 analyzed", "cache hit"} {
		if !strings.Contains(warm, want) {
			t.Errorf("warm -v report missing %q:\n%s", want, warm)
		}
	}
}

// TestRunSubsetBypassesCache pins that -run and -cache-dir do not
// compose: the cache stores full-suite results only, and the CLI says
// so instead of silently ignoring one flag.
func TestRunSubsetBypassesCache(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	var stderr bytes.Buffer
	if code := realMain([]string{"-run", "maporder", "-cache-dir", cacheDir, "phantom/internal/gf2"}, io.Discard, &stderr); code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-cache-dir ignored with -run") {
		t.Errorf("missing cache-bypass notice:\n%s", stderr.String())
	}
	entries, err := os.ReadDir(cacheDir)
	if err == nil && len(entries) > 0 {
		t.Errorf("-run populated the cache: %v", entries)
	}
}

// TestFixtureMode pins the CLI face of the fixture harness: -fixture
// runs the raw rule on a testdata package directory, ignoring Applies
// scopes. lockcheck's scope excludes testdata paths, so without
// -fixture its seeded bad fixture exits 0 — CI's per-analyzer
// seeded-violation gate depends on -fixture seeing through that.
func TestFixtureMode(t *testing.T) {
	var stdout bytes.Buffer
	code := realMain([]string{"-fixture", "-run", "lockcheck",
		"../../internal/analysis/testdata/src/lockcheck/bad"}, &stdout, io.Discard)
	if code != 1 {
		t.Fatalf("bad fixture: exit = %d, want 1\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "(lockcheck)") {
		t.Errorf("expected lockcheck findings:\n%s", stdout.String())
	}

	// The same analyzer through the scoped driver stays silent on the
	// same directory — the contrast -fixture exists to resolve.
	stdout.Reset()
	code = realMain([]string{"-run", "lockcheck",
		"../../internal/analysis/testdata/src/lockcheck/bad"}, &stdout, io.Discard)
	if code != 0 || stdout.Len() != 0 {
		t.Errorf("scoped run: exit = %d, findings %q; want 0 and none", code, stdout.String())
	}

	// ok fixtures stay clean, and a nonexistent directory is a runtime
	// error (exit 1), not a silent pass.
	if code := realMain([]string{"-fixture", "-run", "lockcheck",
		"../../internal/analysis/testdata/src/lockcheck/ok"}, io.Discard, io.Discard); code != 0 {
		t.Errorf("ok fixture: exit = %d, want 0", code)
	}
	if code := realMain([]string{"-fixture", "no/such/dir"}, io.Discard, io.Discard); code != 1 {
		t.Errorf("missing dir: exit = %d, want 1", code)
	}
}

// TestListDescribesEveryAnalyzer keeps -list in sync with the suite.
func TestListDescribesEveryAnalyzer(t *testing.T) {
	var stdout bytes.Buffer
	if code := realMain([]string{"-list"}, &stdout, io.Discard); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maporder", "noperturb", "ctxflow", "faultalloc",
		"lockcheck", "errflow", "goleak", "hotalloc", "unusedignore"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}
