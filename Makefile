GO ?= go

.PHONY: build test vet race check bench bench-sweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep engine made the race detector a meaningful gate for the
# whole repo: every multi-run experiment now fans (arch, reboot) jobs
# over a worker pool.
race:
	$(GO) test -race ./...

# The full gate: what CI runs.
check: vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# The parallel-sweep headline number: Table 3 at 1 worker vs GOMAXPROCS.
bench-sweep:
	$(GO) test -run xxx -bench 'BenchmarkSweepTable3' -benchtime=3x .
