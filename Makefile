GO ?= go

.PHONY: build test vet race check bench bench-smoke bench-sweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep engine made the race detector a meaningful gate for the
# whole repo: every multi-run experiment now fans (arch, reboot) jobs
# over a worker pool.
race:
	$(GO) test -race ./...

# The full gate: what CI runs.
check: vet build test race

# Full benchmark suite, archived as a dated JSON log (one test2json event
# per line) so before/after comparisons can be committed next to the code.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json ./... > BENCH_$$(date +%Y%m%d).json

# One benchmark iteration each: a smoke test that the harness still runs,
# not a measurement. CI uses this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The parallel-sweep headline number: Table 3 at 1 worker vs GOMAXPROCS.
bench-sweep:
	$(GO) test -run xxx -bench 'BenchmarkSweepTable3' -benchtime=3x .
