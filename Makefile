GO ?= go

.PHONY: build test vet phantom-vet bench-vet staticcheck govulncheck race check cover bench bench-smoke bench-sweep bench-telemetry serve-smoke cluster-smoke bench-serve bench-cluster fuzz-decode search-smoke search-nightly

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariant analyzers (internal/analysis, driven by the
# fifth binary): determinism, maporder, noperturb, ctxflow, faultalloc,
# lockcheck, errflow, goleak, hotalloc, unusedignore. Exits 1 on any
# finding, so a stray time.Now or unsorted map range fails the gate
# before a parity test has to bisect it.
#
# The driver's result cache makes the warm run near-instant on an
# unchanged tree. The cache key hashes package contents and import
# chains but not the analyzer code itself, so the cache directory name
# embeds a checksum of internal/analysis + cmd/phantom-vet: editing an
# analyzer lands in a fresh directory instead of reusing stale results.
VET_CACHE_KEY := $(shell cat internal/analysis/*.go cmd/phantom-vet/*.go | cksum | cut -d' ' -f1)
phantom-vet:
	$(GO) run ./cmd/phantom-vet -v -cache-dir .phantom-vet-cache/$(VET_CACHE_KEY) ./...

# The vet cache headline number: full-repo cold (empty cache) vs warm
# (everything restored), archived as a dated test2json log like the
# other bench targets. One iteration each — cold is seconds, and the
# warm/cold ratio is the quantity of interest, not nanosecond jitter.
bench-vet:
	$(GO) test -run '^$$' -bench 'BenchmarkVetWholeRepo' -benchtime=1x -json ./cmd/phantom-vet \
		> BENCH_$$(date +%Y%m%d)_vet.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_$$(date +%Y%m%d)_vet.json || true

# Third-party gates, pinned to the versions CI installs. Local runs
# skip them with a notice when the tool is not on PATH (the dev
# container vendors no third-party modules); CI always installs and
# runs them, so the merge gate is identical either way.
STATICCHECK_VERSION = 2024.1.1
GOVULNCHECK_VERSION = v1.1.4

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

# The sweep engine made the race detector a meaningful gate for the
# whole repo: every multi-run experiment now fans (arch, reboot) jobs
# over a worker pool.
race:
	$(GO) test -race ./...

# The full gate: what CI runs.
check: vet phantom-vet staticcheck govulncheck build test race cover search-smoke cluster-smoke

# Statement coverage with per-package floors (coverage.floors): fails
# when any package regresses below its recorded seed-state coverage.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./internal/tools/coverfloor -profile cover.out -floors coverage.floors

# Full benchmark suite, archived as a dated JSON log (one test2json event
# per line) so before/after comparisons can be committed next to the code.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json ./... > BENCH_$$(date +%Y%m%d).json

# One benchmark iteration each: a smoke test that the harness still runs,
# not a measurement. CI uses this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The parallel-sweep headline number: Table 3 at 1 worker vs GOMAXPROCS.
bench-sweep:
	$(GO) test -run xxx -bench 'BenchmarkSweepTable3' -benchtime=3x .

# The decoder fuzzer on a fixed budget, as the scheduled CI job runs
# it. Local corpus accumulates under the build cache's fuzz directory,
# which CI persists across runs.
fuzz-decode:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/isa

# A ~2s slice of the attack-variant search (differential fuzzing of the
# speculation model): generates, diffs, classifies, and minimizes at a
# small budget, so the whole generate→diff→classify→minimize pipeline
# is exercised on every `make check`. The full-budget run with fixture
# accumulation is the scheduled search-nightly job.
search-smoke:
	$(GO) run ./cmd/phantom search -seed 1 -budget 500 > /dev/null

# The scheduled nightly search: the canonical budget at a date-derived
# seed (so each night explores fresh programs), landing any minimized
# findings under the accumulating findings cache. Exits non-zero if a
# finding fails to minimize or a landed fixture's replay drifts.
search-nightly:
	$(GO) run ./cmd/phantom search -seed $$(date +%Y%m%d) -budget 20000 -fixtures nightly-findings
	$(GO) test ./internal/search -run 'TestSearchCorpus' -count=1

# End-to-end gate for the serving subsystem: builds the phantom and
# phantom-server binaries, boots the server on an ephemeral port, and
# checks CLI/served byte parity, cache hits, batch, 8-way coalescing,
# and SIGTERM drain from outside the process. Pure Go — no curl/jq.
serve-smoke:
	$(GO) run ./internal/tools/servesmoke

# End-to-end gate for the distributed tier: boots a 3-node fleet with a
# static -peers ring and per-node durable stores, then checks the
# deterministic keyspace split, fan-out byte-parity with the CLI,
# single-hop proxying, dead-peer degradation with zero client errors,
# and a warm-store restart that answers without re-simulating.
cluster-smoke:
	$(GO) run ./internal/tools/servesmoke -cluster

# The serving headline numbers: cold miss vs content-addressed cache
# hit vs 8-way coalesced, archived as a dated test2json log like the
# other bench targets. The acceptance bar is warm >= 50x cold.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeTable1' -benchmem -json ./internal/service \
		> BENCH_$$(date +%Y%m%d)_serve.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_$$(date +%Y%m%d)_serve.json || true

# The distributed-tier numbers: durable-store put/get throughput and
# the cost of a warm proxy hop vs a warm local hit, archived as a dated
# test2json log like the other bench targets.
bench-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkStore(Put|Get)' -benchmem -json ./internal/store \
		> BENCH_$$(date +%Y%m%d)_cluster.json
	$(GO) test -run '^$$' -bench 'BenchmarkServe(Local|Proxied)Warm' -benchmem -json ./internal/service \
		>> BENCH_$$(date +%Y%m%d)_cluster.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_$$(date +%Y%m%d)_cluster.json || true

# The telemetry no-perturbation overhead number (Table 1 with the hub
# off vs on), archived as a dated JSON log like `make bench`. Runs the
# off/on pair back-to-back five times so each pair shares machine
# conditions — -count grouping would run all off then all on, letting
# thermal/neighbor drift masquerade as overhead.
bench-telemetry:
	rm -f BENCH_$$(date +%Y%m%d)_telemetry.json
	for i in 1 2 3 4 5; do \
		$(GO) test -run '^$$' -bench 'BenchmarkTable1Telemetry' -benchmem -benchtime=5s -count=1 -json . \
			>> BENCH_$$(date +%Y%m%d)_telemetry.json; \
	done
	@grep -o '"Output":"Benchmark[^"]*' BENCH_$$(date +%Y%m%d)_telemetry.json || true
