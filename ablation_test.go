package phantom

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// bench contrasts the shipped mechanism with a deliberately weakened
// variant and reports the quality metric the mechanism buys:
//
//	BenchmarkAblation_Scoring       — Section 7.3 multi-set bounded scoring
//	                                  vs a naive single-set unbounded score
//	BenchmarkAblation_Confirmation  — the physmap scan's majority re-test
//	                                  vs accepting the first raw signal
//	BenchmarkAblation_PhantomWindow — MDS-leak success as a function of the
//	                                  Phantom execute-window size
//	BenchmarkAblation_NoiseSweep    — fetch covert-channel accuracy under
//	                                  increasing noise
//	BenchmarkAblation_SpectreBaseline — the Listing 4 gadget attacked with
//	                                  classic Spectre only (no nested
//	                                  Phantom window): the paper's claim
//	                                  that MDS gadgets are useless to
//	                                  conventional Spectre
import (
	"testing"

	"phantom/internal/core"
	"phantom/internal/kernel"
	"phantom/internal/uarch"
)

// ablationKASLRAccuracy measures image-KASLR accuracy under a given
// scoring configuration.
func ablationKASLRAccuracy(b *testing.B, cfg core.ImageKASLRConfig) float64 {
	b.Helper()
	correct := 0
	const runs = 6
	for r := 0; r < runs; r++ {
		k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: int64(r) * 7, NoiseLevel: 2})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.BreakImageKASLR(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct {
			correct++
		}
	}
	return 100 * float64(correct) / runs
}

func BenchmarkAblation_Scoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationKASLRAccuracy(b, core.ImageKASLRConfig{Sets: 4, Bound: 10})
		naive := ablationKASLRAccuracy(b, core.ImageKASLRConfig{Sets: 1, Bound: 1e9})
		b.ReportMetric(full, "scored_accuracy_pct")
		b.ReportMetric(naive, "naive_accuracy_pct")
		if full < naive {
			b.Logf("warning: scoring did not help at this noise level (%v vs %v)", full, naive)
		}
	}
}

func BenchmarkAblation_Confirmation(b *testing.B) {
	run := func(confirmations int) float64 {
		correct := 0
		const runs = 4
		for r := 0; r < runs; r++ {
			k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: int64(r)*13 + 1, NoiseLevel: 2})
			if err != nil {
				b.Fatal(err)
			}
			img, err := core.BreakImageKASLR(k, core.ImageKASLRConfig{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.BreakPhysmapKASLR(k, core.PhysmapKASLRConfig{
				ImageBase:     img.Guess,
				Confirmations: confirmations,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Correct {
				correct++
			}
		}
		return 100 * float64(correct) / runs
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(3), "confirmed_accuracy_pct")
		b.ReportMetric(run(-1), "unconfirmed_accuracy_pct")
	}
}

func BenchmarkAblation_PhantomWindow(b *testing.B) {
	// Sweep the Phantom execute budget and measure whether the MDS-gadget
	// leak works. The paper's P3 disclosure gadget needs 4 µops (and,
	// shl, add, load); a window of 0 yields nothing, tiny windows cut the
	// gadget short, and the Zen 2 budget of 6 suffices.
	for _, window := range []int{0, 2, 4, 6, 8} {
		b.Run(benchName("execUops", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := uarch.Zen2()
				p.PhantomWindow.ExecUops = window
				k, err := kernel.Boot(p, kernel.Config{Seed: 3, NoiseLevel: 0})
				if err != nil {
					b.Fatal(err)
				}
				hugeVA := uint64(0x7f6000000000)
				pa, err := k.AllocUserHuge(hugeVA)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.LeakKernelMemory(k, k.SecretVA, core.MDSLeakConfig{
					ImageBase: k.ImageBase, PhysmapBase: k.PhysmapBase,
					ReloadPhys: pa, HugeVA: hugeVA, Bytes: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Accuracy.Percent(), "leak_accuracy_pct")
			}
		})
	}
}

func BenchmarkAblation_NoiseSweep(b *testing.B) {
	for _, noise := range []float64{-1, 1, 2, 4, 8} {
		b.Run(benchName("noise10x", int(noise*10)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunCovertFetch(uarch.Zen2(), core.CovertConfig{
					Seed: int64(i), Bits: 512, Noise: noise,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Accuracy.Percent(), "accuracy_pct")
			}
		})
	}
}

func BenchmarkAblation_SpectreBaseline(b *testing.B) {
	// Classic Spectre against the Listing 4 gadget: train the bounds
	// check taken but do NOT inject the nested Phantom prediction. The
	// wrong path performs the single out-of-bounds load and then calls
	// the real parse_data — no secret-dependent second load exists, so
	// nothing reaches the reload buffer. This is the paper's motivation
	// for P3: "A conventional Spectre attack would not succeed, however,
	// since there is no data-dependent load."
	for i := 0; i < b.N; i++ {
		k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: 5, NoiseLevel: 0})
		if err != nil {
			b.Fatal(err)
		}
		hugeVA := uint64(0x7f6000000000)
		pa, err := k.AllocUserHuge(hugeVA)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.LeakKernelMemoryBaseline(k, k.SecretVA, core.MDSLeakConfig{
			ImageBase: k.ImageBase, PhysmapBase: k.PhysmapBase,
			ReloadPhys: pa, HugeVA: hugeVA, Bytes: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy.Percent(), "baseline_leak_accuracy_pct")
		if res.Accuracy.Percent() > 0 {
			b.Fatal("classic Spectre leaked through a single-load gadget")
		}
	}
}

func benchName(key string, v int) string {
	if v < 0 {
		return key + "=off"
	}
	return key + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkAblation_Amplification(b *testing.B) {
	// The §7.3 amplifier: a second speculative branch on the syscall path
	// doubles the per-set eviction signal. Compare image-KASLR accuracy
	// at an elevated noise level with and without it.
	run := func(amplify bool) float64 {
		correct := 0
		const runs = 6
		for r := 0; r < runs; r++ {
			k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: int64(r)*17 + 2, NoiseLevel: 3})
			if err != nil {
				b.Fatal(err)
			}
			// Bound 30: above one eviction's latency delta (~14 cycles),
			// so the amplifier's doubled signal is not clamped away.
			res, err := core.BreakImageKASLR(k, core.ImageKASLRConfig{Sets: 2, Bound: 30, Amplify: amplify})
			if err != nil {
				b.Fatal(err)
			}
			if res.Correct {
				correct++
			}
		}
		return 100 * float64(correct) / runs
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "amplified_accuracy_pct")
		b.ReportMetric(run(false), "plain_accuracy_pct")
	}
}
