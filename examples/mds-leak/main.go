// mds-leak reproduces Section 7.4 end to end on AMD Zen 2: run the full
// Section 7 derandomization chain, then leak the kernel's planted
// 4096-byte secret through the Listing 4 MDS gadget — a gadget with only
// a *single* attacker-indexed load, useless to classic Spectre — by
// nesting a Phantom window (to the P3 disclosure gadget) inside the
// Spectre window of the mispredicted bounds check.
package main

import (
	"bytes"
	"fmt"
	"log"

	"phantom"
)

func main() {
	sys, err := phantom.NewSystem(phantom.Zen2, phantom.SystemConfig{Seed: 1337})
	if err != nil {
		log.Fatal(err)
	}

	secretVA, truth := sys.SecretAddr()
	fmt.Printf("Leaking 256 bytes of kernel memory at %#x on %s...\n",
		secretVA, phantom.Zen2.ModelName())

	res, err := sys.LeakKernelMemory(secretVA, 256)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("accuracy: %.2f%%   rate: %.0f B/s (simulated)\n\n", res.AccuracyPct, res.BytesPerSecond)
	fmt.Println("leaked  :", hexRow(res.Leaked[:32]))
	fmt.Println("truth   :", hexRow(truth[:32]))
	if bytes.Equal(res.Leaked, truth[:len(res.Leaked)]) {
		fmt.Println("\nThe kernel secret was recovered exactly.")
	}
}

func hexRow(b []byte) string { return fmt.Sprintf("% x", b) }
