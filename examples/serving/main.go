// Serving mode: the phantom experiments behind a long-running HTTP
// API (DESIGN.md §5d) — a content-addressed result cache, request
// coalescing, and backpressure in front of the deterministic simulator.
//
// So that `go run ./examples/serving` is self-contained, this example
// boots the same service the phantom-server binary serves, in-process
// on an ephemeral port, and then talks to it like any HTTP client
// would. Against a real deployment you would only keep the client
// half — see EXPERIMENTS.md "Serving mode" for the curl equivalents.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	"phantom/internal/service"
)

type result struct {
	ID        string `json:"id"`
	Output    string `json:"output"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
}

func main() {
	// The phantom-server binary does exactly this (plus flags, telemetry
	// and signal-driven drain) around the same service.Server.
	srv := service.NewServer(service.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler()) //nolint:errcheck // demo server
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving the phantom experiments at %s\n\n", base)

	// A request names an experiment and its options; anything left zero
	// takes the CLI default. This one is `phantom chain -arch zen2`.
	req := `{"experiment":"chain","archs":["zen2"]}`
	fmt.Printf("POST /v1/experiments  %s\n", req)
	cold := post(base, req)
	fmt.Printf("  -> id %s…  cached=%v\n", cold.ID[:12], cold.Cached)
	fmt.Printf("  -> output is byte-identical to the CLI's stdout:\n\n%s\n", indent(cold.Output))

	// Results are content-addressed: the same *meaning* is the same
	// entry, however the request is spelled. Explicit defaults, alias
	// expansion and arch order all normalize away before hashing.
	warm := post(base, `{"experiment":"chain","archs":["zen2"],"seed":1}`)
	fmt.Printf("repeat (explicitly spelled defaults) -> cached=%v, same id=%v\n",
		warm.Cached, warm.ID == cold.ID)

	// Identical concurrent requests collapse onto one simulation: one
	// caller runs it, the rest ride along ("coalesced":true).
	var wg sync.WaitGroup
	riders := 0
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if post(base, `{"experiment":"mds","archs":["zen2"],"runs":1,"bytes":64}`).Coalesced {
				mu.Lock()
				riders++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("8 concurrent identical requests -> %d coalesced riders, %d simulation(s)\n",
		riders, srv.Stats().Simulations.Load()-1) // -1: the chain run above

	st := srv.CacheStats()
	fmt.Printf("cache: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
}

func post(base, body string) result {
	resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", body, resp.StatusCode, data)
	}
	var res result
	if err := json.Unmarshal(data, &res); err != nil {
		log.Fatal(err)
	}
	return res
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}
