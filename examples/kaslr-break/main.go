// kaslr-break runs the complete Section 7 exploit chain on AMD Zen 1 and
// Zen 2: derandomize the kernel image (P1, Table 3), then physmap (P2,
// Table 4), then find the physical address of an attacker page through
// physmap (Table 5). Each stage consumes only the previous stage's
// *recovered* values, never simulator ground truth.
package main

import (
	"fmt"
	"log"

	"phantom"
)

func main() {
	for _, arch := range []phantom.Microarch{phantom.Zen1, phantom.Zen2} {
		fmt.Printf("=== %s ===\n", arch.ModelName())
		sys, err := phantom.NewSystem(arch, phantom.SystemConfig{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}

		img, err := sys.BreakImageKASLR()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1. kernel image KASLR: %#x  correct=%-5v (%.4fs sim)\n",
			img.Guess, img.Correct, img.Seconds)

		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("2. physmap KASLR:      %#x  correct=%-5v (%.4fs sim)\n",
			pm.Guess, pm.Correct, pm.Seconds)

		pa, err := sys.FindPhysAddr(img.Guess, pm.Guess)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3. page phys addr:     %#x  correct=%-5v (%.4fs sim)\n\n",
			pa.Guess, pa.Correct, pa.Seconds)
	}

	// Zen 3 lacks the Phantom execute window, so stage 2 must find
	// nothing — the asymmetry the paper's Table 4 reflects by only
	// listing Zen 1 and Zen 2.
	fmt.Println("=== control: AMD Ryzen 5 5600G (Zen 3) ===")
	sys, err := phantom.NewSystem(phantom.Zen3, phantom.SystemConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	img, err := sys.BreakImageKASLR()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. kernel image KASLR: %#x  correct=%v (P1 works on all Zen)\n", img.Guess, img.Correct)
	pm, err := sys.BreakPhysmapKASLR(img.Guess)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. physmap KASLR:      signal=%v (no transient execution on Zen 3)\n", pm.Guess != 0)
}
