// mitigation-audit evaluates the deployed and proposed Phantom
// mitigations on every AMD part (Sections 6.3 and 8):
//
//   - SuppressBPOnNonBr stops transient execution at non-branch victims
//     but leaves transient fetch and decode intact (Observation O4), is
//     unsupported on Zen 1, and does nothing for branch-instruction
//     victims;
//   - AutoIBRS (Zen 4) refuses to steer by cross-privilege predictions
//     but still prefetches their targets into the I-cache (Observation
//     O5), leaving the P1 KASLR break fully functional;
//   - a full-flush IBPB on kernel entry stops everything — at a
//     prohibitive syscall cost.
package main

import (
	"fmt"
	"log"

	"phantom"
)

func main() {
	for _, arch := range phantom.AMDMicroarchs() {
		rep, err := phantom.RunMitigations(arch, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}

	// The O5 headline: image KASLR still breaks on Zen 4 with AutoIBRS on.
	sys, err := phantom.NewSystem(phantom.Zen4, phantom.SystemConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.BreakImageKASLR()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Image KASLR on Zen 4 with AutoIBRS enabled: correct=%v (%.4fs sim)\n",
		res.Correct, res.Seconds)
}
