// speculation-matrix regenerates Table 1 for every modeled
// microarchitecture: for each training/victim branch-type combination,
// how far does the mispredicted control flow advance — transient fetch
// (IF), transient decode (ID), transient execute (EX)? The derived
// observations O1-O3 of Section 6 follow directly from the matrix.
package main

import (
	"fmt"
	"log"

	"phantom"
)

func main() {
	for _, arch := range phantom.AllMicroarchs() {
		tb, err := phantom.RunTable1(arch, phantom.Table1Options{Seed: 1, Trials: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tb)
	}

	fmt.Println("Observations (cf. Section 6):")
	fmt.Println("  O1: speculative branch targets are fetched before the source decodes (IF everywhere)")
	fmt.Println("  O2: the fetched targets enter the pipeline (ID everywhere, jmp*-victim quirks aside)")
	fmt.Println("  O3: decoder-detectable speculation reaches execute only on AMD Zen 1/2")
}
