// Quickstart: boot a simulated AMD Zen 2 system and break its kernel
// image KASLR with Phantom's P1 primitive (transient instruction fetch),
// exactly as in Section 7.1 / Table 3 of the paper.
package main

import (
	"fmt"
	"log"

	"phantom"
)

func main() {
	// Every boot re-randomizes the kernel layout; the seed makes the run
	// reproducible.
	sys, err := phantom.NewSystem(phantom.Zen2, phantom.SystemConfig{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Booted a simulated %s.\n", phantom.Zen2.ModelName())
	fmt.Println("Breaking kernel image KASLR with Phantom speculation (P1)...")

	res, err := sys.BreakImageKASLR()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  attacker's guess: %#x\n", res.Guess)
	fmt.Printf("  ground truth:     %#x\n", sys.KernelImageBase())
	fmt.Printf("  correct:          %v\n", res.Correct)
	fmt.Printf("  simulated time:   %.4f s\n", res.Seconds)
}
