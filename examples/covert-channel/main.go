// covert-channel measures the Section 6.4 user-to-kernel covert channels
// of Table 2: the fetch channel (P1: does a kernel instruction fetch of
// the injected target happen?) on all AMD parts, and the execute channel
// (P2: does a transient kernel load happen?) which only carries a signal
// on Zen 1/2.
package main

import (
	"fmt"
	"log"

	"phantom"
)

func main() {
	opts := phantom.Table2Options{Seed: 42, Bits: 1024, Runs: 3}

	fetch, err := phantom.RunTable2Fetch(phantom.AMDMicroarchs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phantom.FormatTable2("Fetch covert channel (P1) — works on every Zen, AutoIBRS included", fetch))
	fmt.Println()

	exec, err := phantom.RunTable2Execute(phantom.AMDMicroarchs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phantom.FormatTable2("Execute covert channel (P2) — signal only on Zen 1/2", exec))
	fmt.Println("\n(~50% on Zen 3/4 is chance level: no Phantom execute window.)")
}
