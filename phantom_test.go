package phantom

import (
	"bytes"
	"strings"
	"testing"
)

// reach finds a Table1 cell by kind names.
func (t *Table1) reach(train, victim string) StageReach {
	for _, row := range t.Cells {
		for _, c := range row {
			if c.Training == train && c.Victim == victim {
				return c.Reach
			}
		}
	}
	return StageReach{}
}

func TestTable1Zen2FullReach(t *testing.T) {
	tb, err := RunTable1(Zen2, Table1Options{Seed: 1, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// O3: decoder-detectable mispredictions reach execute on Zen 1/2.
	for _, train := range []string{"jmp*", "jmp", "jcc", "ret"} {
		for _, victim := range []string{"jmp", "jcc", "non-branch"} {
			if train == victim {
				continue
			}
			r := tb.reach(train, victim)
			if !r.EX {
				t.Errorf("zen2 (%s,%s) = %v, want EX", train, victim, r)
			}
		}
	}
	// Retbleed cell: jmp* training on a ret victim.
	if r := tb.reach("jmp*", "ret"); !r.EX {
		t.Errorf("zen2 (jmp*,ret) = %v, want EX", r)
	}
	// Footnote c: straight-line speculation past an unpredicted return.
	if r := tb.reach("non-branch", "ret"); !r.EX {
		t.Errorf("zen2 SLS cell = %v, want EX", r)
	}
}

func TestTable1Zen4DecodeOnly(t *testing.T) {
	tb, err := RunTable1(Zen4, Table1Options{Seed: 2, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Phantom on Zen 3/4 reaches fetch and decode but never execute.
	for _, train := range []string{"jmp*", "jmp", "jcc", "ret"} {
		for _, victim := range []string{"jmp*", "jmp", "jcc", "ret", "non-branch"} {
			if train == victim {
				continue
			}
			r := tb.reach(train, victim)
			if r.EX {
				t.Errorf("zen4 (%s,%s) reached EX", train, victim)
			}
			if victim != "jmp*" && (!r.IF || !r.ID) {
				t.Errorf("zen4 (%s,%s) = %v, want IF+ID", train, victim, r)
			}
		}
	}
	// SLS resolves at execute, not at decode, so it still reaches EX.
	if r := tb.reach("non-branch", "ret"); !r.EX {
		t.Errorf("zen4 SLS cell = %v, want EX", r)
	}
}

func TestTable1IntelAnomalies(t *testing.T) {
	tb9, err := RunTable1(Intel9, Table1Options{Seed: 3, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 9th gen: no observable speculation at jmp* victims.
	for _, train := range []string{"jmp", "jcc"} {
		if r := tb9.reach(train, "jmp*"); r.IF || r.ID || r.EX {
			t.Errorf("intel9 (%s,jmp*) = %v, want none", train, r)
		}
	}
	// No straight-line speculation on Intel.
	if r := tb9.reach("non-branch", "ret"); r.EX {
		t.Errorf("intel9 SLS cell = %v, want no EX", r)
	}

	tb12, err := RunTable1(Intel12, Table1Options{Seed: 4, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 12th gen P-cores: jmp* victims fetch but do not decode.
	if r := tb12.reach("jmp", "jmp*"); !r.IF || r.ID {
		t.Errorf("intel12 (jmp,jmp*) = %v, want IF only", r)
	}
}

func TestTable1ObservationsO1O2(t *testing.T) {
	// O1/O2 hold on every modeled part: some evaluated cell shows IF and
	// ID on each microarchitecture.
	for _, arch := range AllMicroarchs() {
		tb, err := RunTable1(arch, Table1Options{Seed: 5, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		anyIF, anyID := false, false
		for _, row := range tb.Cells {
			for _, c := range row {
				if !c.Excluded {
					anyIF = anyIF || c.Reach.IF
					anyID = anyID || c.Reach.ID
				}
			}
		}
		if !anyIF || !anyID {
			t.Errorf("%s: O1/O2 violated (IF=%v ID=%v)", arch, anyIF, anyID)
		}
	}
}

func TestTable1UnderNoise(t *testing.T) {
	// The channels must survive calibrated noise via the negative-test
	// methodology.
	tb, err := RunTable1(Zen2, Table1Options{Seed: 6, Trials: 8, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := tb.reach("jmp*", "non-branch"); !r.EX {
		t.Errorf("noisy zen2 (jmp*,non-branch) = %v, want EX", r)
	}
}

func TestFig6SignalOnlyAtSeriesOffset(t *testing.T) {
	for _, arch := range []Microarch{Zen2, Zen4} {
		s, err := RunFig6(arch, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Points {
			sameSet := p.Offset>>6 == s.SeriesOffset>>6
			if sameSet && p.Misses == 0 {
				t.Errorf("%s: no misses at matching offset %#x", arch, p.Offset)
			}
			if !sameSet && p.Misses != 0 {
				t.Errorf("%s: spurious misses at offset %#x", arch, p.Offset)
			}
		}
	}
}

func TestFig7RecoversPublishedFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("collision sampling is slow")
	}
	f, err := RunFig7(Zen3, Fig7Options{Seed: 9, BruteBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force must fail on Zen 3 (needs 12-bit flips).
	if f.BruteForceFound {
		t.Error("brute force found a small-flip collision on Zen3")
	}
	// All 12 published functions must be among the recovered ones.
	published := []string{
		"b47 ⊕ b35 ⊕ b23",
		"b47 ⊕ b36 ⊕ b24 ⊕ b12",
		"b47 ⊕ b37 ⊕ b25 ⊕ b13",
		"b47 ⊕ b38 ⊕ b26 ⊕ b14",
		"b47 ⊕ b39 ⊕ b26 ⊕ b13",
		"b47 ⊕ b39 ⊕ b27 ⊕ b15",
		"b47 ⊕ b40 ⊕ b28 ⊕ b16",
		"b47 ⊕ b41 ⊕ b29 ⊕ b17",
		"b47 ⊕ b42 ⊕ b30 ⊕ b18",
		"b47 ⊕ b43 ⊕ b31 ⊕ b19",
		"b47 ⊕ b44 ⊕ b32 ⊕ b20",
		"b47 ⊕ b45 ⊕ b33 ⊕ b21",
	}
	got := strings.Join(f.Functions, "\n")
	for _, want := range published {
		if !strings.Contains(got, want) {
			t.Errorf("published function %q not recovered", want)
		}
	}
	// The b12/b16 and b13/b17 overlaps.
	overlaps := strings.Join(f.TagOverlaps, "\n")
	for _, want := range []string{"b16 ⊕ b12", "b17 ⊕ b13"} {
		if !strings.Contains(overlaps, want) {
			t.Errorf("tag overlap %q not recovered", want)
		}
	}
}

func TestFig7BruteForceSucceedsOnZen2(t *testing.T) {
	if testing.Short() {
		t.Skip("brute force is slow")
	}
	f, err := RunFig7(Zen2, Fig7Options{Seed: 10, Samples: 4, MaxBatches: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !f.BruteForceFound {
		t.Fatal("brute force failed on Zen2 (a 4-bit pattern exists)")
	}
}

func TestTable2FetchAllZen(t *testing.T) {
	rows, err := RunTable2Fetch(AMDMicroarchs(), Table2Options{Seed: 11, Bits: 256, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Table 2 fetch accuracies range 90.67%-100%.
		if r.AccuracyPct < 85 {
			t.Errorf("%s fetch channel accuracy %.2f%%, want >= 85%%", r.Arch, r.AccuracyPct)
		}
	}
}

func TestTable2ExecuteOnlyZen12(t *testing.T) {
	rows, err := RunTable2Execute(AMDMicroarchs(), Table2Options{Seed: 12, Bits: 256, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Arch {
		case Zen1, Zen2:
			if r.AccuracyPct < 90 {
				t.Errorf("%s execute channel accuracy %.2f%%, want >= 90%%", r.Arch, r.AccuracyPct)
			}
		default:
			// No Phantom execute window: the channel degenerates to noise.
			if r.AccuracyPct > 65 {
				t.Errorf("%s execute channel accuracy %.2f%%, want chance level", r.Arch, r.AccuracyPct)
			}
		}
	}
}

func TestTable3ImageKASLR(t *testing.T) {
	rows, err := RunTable3([]Microarch{Zen2, Zen3, Zen4}, DerandOptions{Seed: 13, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Table 3 accuracies are 95-100%.
		if r.AccuracyPct < 75 {
			t.Errorf("%s image KASLR accuracy %.0f%%", r.Arch, r.AccuracyPct)
		}
		if r.MedianSeconds <= 0 {
			t.Errorf("%s: no time recorded", r.Arch)
		}
	}
}

func TestTable4PhysmapKASLR(t *testing.T) {
	rows, err := RunTable4([]Microarch{Zen1, Zen2}, DerandOptions{Seed: 14, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Table 4: 90-100%.
		if r.AccuracyPct < 66 {
			t.Errorf("%s physmap KASLR accuracy %.0f%%", r.Arch, r.AccuracyPct)
		}
	}
}

func TestPhysmapKASLRFailsOnZen3(t *testing.T) {
	// P2 needs the Phantom execute window; Zen 3 has none, so the scan
	// must come up empty rather than report a wrong base confidently...
	sys, err := NewSystem(Zen3, SystemConfig{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	img, err := sys.BreakImageKASLR()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.BreakPhysmapKASLR(img.Guess)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("physmap KASLR succeeded on Zen3, which lacks transient execution")
	}
	if res.Guess != 0 {
		t.Fatalf("physmap scan on Zen3 found a (false) signal at %#x", res.Guess)
	}
}

func TestTable5PhysAddr(t *testing.T) {
	rows, err := RunTable5(DerandOptions{Seed: 16, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AccuracyPct < 50 {
			t.Errorf("%s (%s) physaddr accuracy %.0f%%", r.Arch, r.Memory, r.AccuracyPct)
		}
	}
	// The 64 GB machine's search takes proportionally longer (the paper
	// measures 1 s vs 16 s medians).
	if rows[1].MedianSeconds <= rows[0].MedianSeconds {
		t.Errorf("64 GB scan (%f s) not slower than 8 GB scan (%f s)",
			rows[1].MedianSeconds, rows[0].MedianSeconds)
	}
}

func TestMDSLeakEndToEnd(t *testing.T) {
	sys, err := NewSystem(Zen2, SystemConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	secretVA, secret := sys.SecretAddr()
	res, err := sys.LeakKernelMemory(secretVA, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.AccuracyPct < 95 {
		t.Fatalf("MDS leak accuracy %.2f%%", res.AccuracyPct)
	}
	if !bytes.Equal(res.Leaked[:256], secret[:256]) && res.AccuracyPct == 100 {
		t.Fatal("perfect accuracy but mismatching bytes — accounting bug")
	}
}

func TestMDSLeakNeedsExecuteWindow(t *testing.T) {
	// On Zen 3 the nested Phantom window has no execute budget; the leak
	// gets no signal.
	sys, err := NewSystem(Zen3, SystemConfig{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	secretVA, _ := sys.SecretAddr()
	// Skip the chain (physmap cannot be broken on Zen 3 anyway) and call
	// the internal stage with ground truth via the public wrapper: the
	// end-to-end call must fail at the physmap stage.
	if _, err := sys.LeakKernelMemory(secretVA, 32); err == nil {
		t.Fatal("MDS leak chain succeeded on Zen3")
	}
}

func TestMitigationsO4O5(t *testing.T) {
	m2, err := RunMitigations(Zen2, 19)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.SuppressSupported {
		t.Fatal("Zen2 must support SuppressBPOnNonBr")
	}
	if !m2.BaselineReach.EX {
		t.Error("Zen2 baseline non-branch victim should reach EX")
	}
	if m2.SuppressReach.EX {
		t.Error("SuppressBPOnNonBr did not stop transient execution")
	}
	if !m2.SuppressReach.IF || !m2.SuppressReach.ID {
		t.Errorf("O4 violated: reach with MSR = %v, want IF+ID", m2.SuppressReach)
	}
	if !m2.BranchVictimReach.EX {
		t.Error("branch victims should still reach EX with the MSR set")
	}
	if m2.OverheadPct <= 0 || m2.OverheadPct > 3 {
		t.Errorf("SuppressBPOnNonBr overhead %.2f%%, want (0, 3]", m2.OverheadPct)
	}
	if !m2.IBPBBlocksPhantom {
		t.Error("IBPB-on-entry failed to block Phantom")
	}

	m1, err := RunMitigations(Zen1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m1.SuppressSupported {
		t.Error("Zen1 must not support SuppressBPOnNonBr (Section 8.1)")
	}

	m4, err := RunMitigations(Zen4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if !m4.AutoIBRSSupported || !m4.AutoIBRSLeavesIF || !m4.AutoIBRSBlocksID {
		t.Errorf("O5 violated: %+v", m4)
	}

	// The hypothetical Section 8.1 frontend stops every Phantom stage —
	// and costs an order of magnitude more than SuppressBPOnNonBr, the
	// trade-off behind the paper's "unfeasible in practice" judgment.
	if !m2.WaitForDecodeBlocksAll {
		t.Error("wait-for-decode frontend did not block all stages")
	}
	if m2.WaitForDecodeOverheadPct < 5 {
		t.Errorf("wait-for-decode overhead %.2f%%, expected substantial", m2.WaitForDecodeOverheadPct)
	}
	if m2.WaitForDecodeOverheadPct < m2.OverheadPct*5 {
		t.Errorf("wait-for-decode (%.2f%%) not clearly costlier than SuppressBPOnNonBr (%.2f%%)",
			m2.WaitForDecodeOverheadPct, m2.OverheadPct)
	}
}

func TestKASLRWorksDespiteAutoIBRS(t *testing.T) {
	// Zen 4 boots with AutoIBRS enabled (threat model), yet P1-based
	// image KASLR still succeeds — the paper's headline for O5.
	sys, err := NewSystem(Zen4, SystemConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.BreakImageKASLR()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("image KASLR failed on Zen4 with AutoIBRS")
	}
}

func TestAttackImpossibleOnIntel(t *testing.T) {
	// Intel parts tag BTB entries with the privilege mode; the
	// cross-privilege attack context cannot be built.
	sys, err := NewSystem(Intel13, SystemConfig{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BreakImageKASLR(); err == nil {
		t.Fatal("cross-privilege attack built on Intel profile")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		sys, err := NewSystem(Zen2, SystemConfig{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.BreakImageKASLR()
		if err != nil {
			t.Fatal(err)
		}
		return res.Guess, res.Seconds
	}
	g1, s1 := run()
	g2, s2 := run()
	if g1 != g2 || s1 != s2 {
		t.Fatalf("same seed diverged: %#x/%f vs %#x/%f", g1, s1, g2, s2)
	}
}

func TestMicroarchPlumbing(t *testing.T) {
	if len(AllMicroarchs()) != 8 || len(AMDMicroarchs()) != 4 {
		t.Fatal("microarch lists wrong")
	}
	for _, a := range AllMicroarchs() {
		if a.ModelName() == "" {
			t.Errorf("%s has no model name", a)
		}
		if _, err := a.profile(); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
	if _, err := NewSystem("pentium", SystemConfig{}); err == nil {
		t.Fatal("bogus microarch accepted")
	}
}

func TestFormatters(t *testing.T) {
	tb, err := RunTable1(Zen2, Table1Options{Seed: 30, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "Table 1") {
		t.Error("Table1 formatter broken")
	}
	rows := []Table2Row{{Arch: Zen2, Model: "m", AccuracyPct: 93, BitsPerSec: 100, Runs: 1}}
	if !strings.Contains(FormatTable2("Table 2", rows), "93.00") {
		t.Error("Table2 formatter broken")
	}
	dr := []DerandRow{{Arch: Zen2, Model: "m", AccuracyPct: 97, MedianSeconds: 4, Runs: 1}}
	if !strings.Contains(FormatDerand("Table 3", dr), "97") {
		t.Error("Derand formatter broken")
	}
}

func TestGenerateReport(t *testing.T) {
	var buf bytes.Buffer
	err := GenerateReport(&buf, ReportOptions{
		Seed: 40, Runs: 2, Bits: 128,
		Archs:           []Microarch{Zen2, Intel13},
		MitigationArchs: []Microarch{Zen2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 6", "Table 2", "Tables 3-5", "Section 7.4",
		"Spectre-V2 baseline", "Mitigations", "O4", "paper",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestRelativeTimeShape(t *testing.T) {
	// The paper's time relation: physmap KASLR (ascending scan over
	// 25,600 slots, stopping at the randomized base) takes far longer
	// than image KASLR (fixed 488-slot scan) — ~100 s vs ~4 s published.
	// A single run's physmap time is slot-dependent, so compare medians
	// over several reboots, as the paper's tables do.
	var imgTimes, pmTimes []float64
	for r := 0; r < 5; r++ {
		sys, err := NewSystem(Zen2, SystemConfig{Seed: 50 + int64(r)*7})
		if err != nil {
			t.Fatal(err)
		}
		img, err := sys.BreakImageKASLR()
		if err != nil {
			t.Fatal(err)
		}
		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			t.Fatal(err)
		}
		if !img.Correct || !pm.Correct {
			t.Fatalf("chain failed at reboot %d", r)
		}
		imgTimes = append(imgTimes, img.Seconds)
		pmTimes = append(pmTimes, pm.Seconds)
	}
	imgMed := median(imgTimes)
	pmMed := median(pmTimes)
	if pmMed <= imgMed {
		t.Fatalf("median physmap scan (%.4fs) not slower than image scan (%.4fs)", pmMed, imgMed)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
